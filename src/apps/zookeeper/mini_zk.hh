/**
 * @file
 * Mini ZooKeeper: a three-server ensemble (zk1..zk3) communicating
 * over asynchronous socket messages, reproducing the concurrency
 * structure of the paper's two ZooKeeper benchmarks.
 *
 * ZK-1144 (startup -> service unavailable, OV): zk1's election thread
 * proposes its own zxid and then reads the highest zxid seen to pick
 * the tally bucket it waits on; peer vote handlers concurrently raise
 * the highest zxid.  If the read happens before any vote arrives, zk1
 * waits on a bucket that never fills — the election retry loop spins
 * forever (local hang, order violation).
 *
 * ZK-1270 (startup -> service unavailable, OV): the leader reads the
 * registered-follower set to decide whom to send NEWEPOCH to,
 * concurrently with followerInfo handlers populating that set.
 * Reading too early sends NEWEPOCH to fewer followers than quorum,
 * so the ack wait loop spins forever (local hang, order violation).
 *
 * Both workloads also contain the ack/tally pull-synchronization
 * reads that the loop analysis must suppress, and the ZK-1144 ack
 * counting pair that ends up "serial" — standing in for the paper's
 * waitForEpoch custom-synchronization false positives.
 */

#ifndef DCATCH_APPS_ZOOKEEPER_MINI_ZK_HH
#define DCATCH_APPS_ZOOKEEPER_MINI_ZK_HH

#include "model/program_model.hh"
#include "runtime/sim.hh"

namespace dcatch::apps::zk {

/// @{ @name Static site ids
// --- ZK-1144 (leader election) ---
inline constexpr const char *kVoteReadHighest =
    "zk.vote/highest.read";
inline constexpr const char *kVoteWriteHighest =
    "zk.vote/highest.write";
inline constexpr const char *kVoteTallyGet = "zk.vote/tally.get";
inline constexpr const char *kVoteTallyPut = "zk.vote/tally.put";
inline constexpr const char *kElectWriteOwn =
    "zk.elect/highest.writeOwn";
inline constexpr const char *kElectSend = "zk.elect/send.vote";
inline constexpr const char *kElectReadHighest =
    "zk.elect/highest.read";
inline constexpr const char *kElectTallyGet = "zk.elect/tally.get";
inline constexpr const char *kElectLoopExit = "zk.elect/loop.exit";
inline constexpr const char *kElectFail = "zk.elect/fatal";
inline constexpr const char *kPeerVoteSend = "zk.peer/send.vote";
// --- ZK-1270 (epoch sync) ---
inline constexpr const char *kFollowerInfoPut =
    "zk.followerInfo/epochs.put";
inline constexpr const char *kLeaderHasZk2 =
    "zk.leader/epochs.hasZk2";
inline constexpr const char *kLeaderHasZk3 =
    "zk.leader/epochs.hasZk3";
inline constexpr const char *kLeaderSendEpoch =
    "zk.leader/send.newEpoch";
inline constexpr const char *kAckRead = "zk.ackEpoch/acks.read";
inline constexpr const char *kAckWrite = "zk.ackEpoch/acks.write";
inline constexpr const char *kLeaderAckLoopRead =
    "zk.leader/acks.read";
inline constexpr const char *kLeaderAckLoopExit =
    "zk.leader/ackloop.exit";
inline constexpr const char *kLeaderFail = "zk.leader/fatal";
inline constexpr const char *kFollowerSendInfo =
    "zk.follower/send.info";
inline constexpr const char *kFollowerSendAck =
    "zk.follower/send.ack";
/// @}

/** Which ZooKeeper workload to drive. */
enum class Workload {
    Election1144, ///< startup: leader election lost-bucket hang
    Epoch1270,    ///< startup: epoch-sync quorum hang
};

/** Build the topology and workload drivers on @p sim. */
void install(sim::Simulation &sim, Workload workload);

/** Program model for the given workload. */
model::ProgramModel buildModel();

} // namespace dcatch::apps::zk

#endif // DCATCH_APPS_ZOOKEEPER_MINI_ZK_HH
