#include "apps/zookeeper/mini_zk.hh"

#include <memory>

#include "apps/common.hh"
#include "runtime/shared.hh"

namespace dcatch::apps::zk {

using namespace dcatch::sim;

namespace {

/** Shared state of the ensemble (all interesting races live on zk1). */
struct State
{
    explicit State(Node &zk1)
        : highestZxid(zk1, "highestZxid", 5),
          tally(zk1, "tally"),
          epochs(zk1, "epochs"),
          acks(zk1, "acks", 0)
    {
    }

    SharedVar<int> highestZxid;
    SharedMap<std::string, std::string> tally; ///< zxid -> vote count
    SharedMap<std::string, std::string> epochs; ///< follower -> epoch
    SharedVar<int> acks;
};

void
installElection(Simulation &sim, Node &zk1, Node &zk2, Node &zk3,
                const std::shared_ptr<State> &st)
{
    // Vote receipt on zk1: adopt higher zxids and tally the vote.
    zk1.registerVerb("vote", [st](ThreadContext &ctx, const Payload &msg) {
        int zxid = static_cast<int>(msg.getInt("zxid"));
        int cur = st->highestZxid.read(ctx, kVoteReadHighest);
        if (zxid > cur)
            st->highestZxid.write(ctx, kVoteWriteHighest, zxid);
        std::string key = std::to_string(zxid);
        int count = 0;
        if (auto prev = st->tally.get(ctx, kVoteTallyGet, key))
            count = std::stoi(*prev);
        st->tally.put(ctx, kVoteTallyPut, key, std::to_string(count + 1));
    });

    // Peers: upon zk1's broadcast, answer with their own (newer) vote.
    auto peer_vote = [](ThreadContext &ctx, const Payload &) {
        ctx.send(kPeerVoteSend, "zk1", "vote",
                 Payload{}.setInt("zxid", 7));
    };
    zk2.registerVerb("vote", peer_vote);
    zk3.registerVerb("vote", peer_vote);

    // zk1's election thread.  The whole FastLeaderElection logic
    // conducts socket operations, so it is in the tracer's scope
    // (section 3.1.1: socket functions and their callees).
    sim.spawn(nullptr, zk1, "zk1.election", [st](ThreadContext &ctx) {
        Frame f(ctx, "electLoop", ScopeKind::Message, "m:elect");
        st->highestZxid.write(ctx, kElectWriteOwn, 5);
        ctx.send(kElectSend, "zk2", "vote", Payload{}.setInt("zxid", 5));
        ctx.send(kElectSend, "zk3", "vote", Payload{}.setInt("zxid", 5));
        ctx.pause(25); // peer votes normally land here
        int highest = st->highestZxid.read(ctx, kElectReadHighest);
        std::string key = std::to_string(highest);
        bool elected = ctx.retryUntil(kElectLoopExit, [&] {
            auto count = st->tally.get(ctx, kElectTallyGet, key);
            return count && std::stoi(*count) >= 2;
        });
        if (!elected)
            ctx.fatalLog(kElectFail,
                         "leader election never converged; "
                         "service unavailable");
    });
}

void
installEpochSync(Simulation &sim, Node &zk1, Node &zk2, Node &zk3,
                 const std::shared_ptr<State> &st)
{
    zk1.registerVerb("followerInfo",
                     [st](ThreadContext &ctx, const Payload &msg) {
                         st->epochs.put(ctx, kFollowerInfoPut,
                                        msg.get("from"),
                                        msg.get("epoch", "1"));
                     });

    zk1.registerVerb("ackEpoch",
                     [st](ThreadContext &ctx, const Payload &) {
                         int n = st->acks.read(ctx, kAckRead);
                         st->acks.write(ctx, kAckWrite, n + 1);
                     });

    auto follower = [](Node &node, const char *name) {
        node.registerVerb("newEpoch",
                          [](ThreadContext &ctx, const Payload &) {
                              ctx.send(kFollowerSendAck, "zk1", "ackEpoch",
                                       Payload{});
                          });
        (void)name;
    };
    follower(zk2, "zk2");
    follower(zk3, "zk3");

    // Followers announce themselves at startup.
    for (Node *node : {&zk2, &zk3}) {
        sim.spawn(nullptr, *node, node->name() + ".startup",
                  [name = node->name()](ThreadContext &ctx) {
                      Frame f(ctx, "followerStart", ScopeKind::Message,
                              "m:fstart-" + name);
                      ctx.pause(4);
                      ctx.send(kFollowerSendInfo, "zk1", "followerInfo",
                               Payload{}.set("from", name).set("epoch",
                                                               "1"));
                  });
    }

    // zk1's leader thread: read the registered-follower set, send
    // NEWEPOCH to whoever is known, and wait for a quorum of acks.
    sim.spawn(nullptr, zk1, "zk1.leader", [st](ThreadContext &ctx) {
        Frame f(ctx, "leaderStart", ScopeKind::Message, "m:leader");
        ctx.pause(25); // follower infos normally land here
        int targets = 0;
        if (st->epochs.contains(ctx, kLeaderHasZk2, "zk2")) {
            ctx.send(kLeaderSendEpoch, "zk2", "newEpoch", Payload{});
            ++targets;
        }
        if (st->epochs.contains(ctx, kLeaderHasZk3, "zk3")) {
            ctx.send(kLeaderSendEpoch, "zk3", "newEpoch", Payload{});
            ++targets;
        }
        (void)targets;
        bool quorum = ctx.retryUntil(kLeaderAckLoopExit, [&] {
            return st->acks.read(ctx, kLeaderAckLoopRead) >= 2;
        });
        if (!quorum)
            ctx.fatalLog(kLeaderFail, "NEWEPOCH quorum never acked; "
                                      "service unavailable");
    });
}

} // namespace

void
install(Simulation &sim, Workload workload)
{
    Node &zk1 = sim.addNode("zk1");
    Node &zk2 = sim.addNode("zk2");
    Node &zk3 = sim.addNode("zk3");

    auto st = std::make_shared<State>(zk1);
    if (workload == Workload::Election1144)
        installElection(sim, zk1, zk2, zk3, st);
    else
        installEpochSync(sim, zk1, zk2, zk3, st);

    if (workload == Workload::Election1144) {
        installBackgroundLoad(sim, zk1, 60);
        installBackgroundLoad(sim, zk2, 40);
        installBackgroundLoad(sim, zk3, 40);
    } else {
        installBackgroundLoad(sim, zk1, 120);
        installBackgroundLoad(sim, zk2, 90);
        installBackgroundLoad(sim, zk3, 90);
    }
}

model::ProgramModel
buildModel()
{
    model::ModelBuilder b;

    // --- ZK-1144 ---
    b.fn("zk1.voteHandler")
        .read(kVoteReadHighest, "var:zk1/highestZxid")
        .write(kVoteWriteHighest, "var:zk1/highestZxid")
        .read(kVoteTallyGet, "map:zk1/tally")
        .write(kVoteTallyPut, "map:zk1/tally")
        .dep(kVoteWriteHighest, {kVoteReadHighest})
        .dep(kVoteTallyPut, {kVoteTallyGet});

    b.fn("zk1.election")
        .write(kElectWriteOwn, "var:zk1/highestZxid")
        .inst(kElectSend)
        .read(kElectReadHighest, "var:zk1/highestZxid")
        .read(kElectTallyGet, "map:zk1/tally")
        .loopExit(kElectLoopExit)
        .dep(kElectLoopExit, {kElectTallyGet})
        .failure(kElectFail, sim::FailureKind::FatalLog)
        .dep(kElectFail, {kElectReadHighest, kElectLoopExit});

    b.fn("zk.peerVote").inst(kPeerVoteSend);

    // --- ZK-1270 ---
    b.fn("zk1.followerInfo").write(kFollowerInfoPut, "map:zk1/epochs");

    b.fn("zk1.ackEpoch")
        .read(kAckRead, "var:zk1/acks")
        .write(kAckWrite, "var:zk1/acks")
        .dep(kAckWrite, {kAckRead});

    b.fn("zk1.leader")
        .read(kLeaderHasZk2, "map:zk1/epochs")
        .read(kLeaderHasZk3, "map:zk1/epochs")
        .inst(kLeaderSendEpoch)
        .dep(kLeaderSendEpoch, {kLeaderHasZk2, kLeaderHasZk3})
        .read(kLeaderAckLoopRead, "var:zk1/acks")
        .loopExit(kLeaderAckLoopExit)
        .dep(kLeaderAckLoopExit, {kLeaderAckLoopRead})
        .failure(kLeaderFail, sim::FailureKind::FatalLog)
        .dep(kLeaderFail, {kLeaderHasZk2, kLeaderHasZk3,
                           kLeaderAckLoopExit});

    b.fn("zk.follower")
        .inst(kFollowerSendInfo)
        .inst(kFollowerSendAck);

    return b.build();
}

} // namespace dcatch::apps::zk
