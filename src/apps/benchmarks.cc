#include "apps/benchmark.hh"

#include <stdexcept>

#include "apps/cassandra/mini_cassandra.hh"
#include "apps/hbase/mini_hbase.hh"
#include "apps/mapreduce/mini_mr.hh"
#include "apps/zookeeper/mini_zk.hh"
#include "detect/report.hh"

namespace dcatch::apps {

namespace {

Benchmark
makeCa1011()
{
    Benchmark b;
    b.id = "CA-1011";
    b.system = "mini-cassandra";
    b.workload = "startup (bootstrap + gossip)";
    b.symptom = "Data backup failure";
    b.error = "DE";
    b.rootCause = "AV";
    b.mechanisms = {false, true, true, true, true};
    b.paper = {3, 0, 0, 5, 2, 0, 46, 4, 3, 6.6, 13.0, 15.9, 324, 7.7, 77};
    b.build = [](sim::Simulation &sim) { ca::install(sim); };
    b.buildModel = [] { return ca::buildModel(); };
    b.knownBugPairs = {
        detect::sitePair(ca::kMutateReadToken, ca::kGossipApplyToken),
        detect::sitePair(ca::kMutateSchemaRead, ca::kGossipSchema)};
    return b;
}

Benchmark
makeHb4539()
{
    Benchmark b;
    b.id = "HB-4539";
    b.system = "mini-hbase";
    b.workload = "split table & alter table";
    b.symptom = "System Master Crash";
    b.error = "DE";
    b.rootCause = "OV";
    b.mechanisms = {true, false, true, true, true};
    b.paper = {3, 0, 1, 3, 0, 1, 24, 4, 4, 1.1, 3.8, 11.9, 87, 4.9, 26};
    b.build = [](sim::Simulation &sim) {
        hb::install(sim, hb::Workload::SplitAlter4539);
    };
    b.buildModel = [] { return hb::buildModel(); };
    b.knownBugPairs = {
        detect::sitePair(hb::kAlterEmpty, hb::kSplitPut),
        detect::sitePair(hb::kAlterEmpty, hb::kWatchErase)};
    return b;
}

Benchmark
makeHb4729()
{
    Benchmark b;
    b.id = "HB-4729";
    b.system = "mini-hbase";
    b.workload = "enable table & expire server";
    b.symptom = "System Master Crash";
    b.error = "DE";
    b.rootCause = "AV";
    b.mechanisms = {true, false, true, true, true};
    b.paper = {4, 1, 0, 5, 5, 0, 52, 6, 5, 3.5, 16.1, 36.8, 278, 19, 60};
    b.build = [](sim::Simulation &sim) {
        hb::install(sim, hb::Workload::EnableExpire4729);
    };
    b.buildModel = [] { return hb::buildModel(); };
    b.knownBugPairs = {
        detect::sitePair(hb::kEnableRemove, hb::kShutRemove),
        detect::sitePair(hb::kEnableExists, hb::kShutRemove),
        detect::sitePair(hb::kEnableRead, hb::kShutRemove)};
    return b;
}

Benchmark
makeMr3274()
{
    Benchmark b;
    b.id = "MR-3274";
    b.system = "mini-mapreduce";
    b.workload = "startup + wordcount + cancel";
    b.symptom = "Hang";
    b.error = "DH";
    b.rootCause = "OV";
    b.mechanisms = {true, true, false, true, true};
    b.paper = {2, 0, 4, 2, 0, 9, 53, 8, 6, 21.2, 94.4, 62.2, 341, 22, 839};
    b.build = [](sim::Simulation &sim) {
        mr::install(sim, mr::Workload::Hang3274);
    };
    b.buildModel = [] { return mr::buildModel(); };
    b.knownBugPairs = {
        detect::sitePair(mr::kGetTaskRead, mr::kUnregRemove)};
    return b;
}

Benchmark
makeMr4637()
{
    Benchmark b;
    b.id = "MR-4637";
    b.system = "mini-mapreduce";
    b.workload = "startup + wordcount + kill";
    b.symptom = "Job Master Crash";
    b.error = "LE";
    b.rootCause = "OV";
    b.mechanisms = {true, true, false, true, true};
    b.paper = {1, 2, 4, 1, 3, 9, 61, 8, 7, 11.7, 36.4, 51.5, 356, 18, 639};
    b.build = [](sim::Simulation &sim) {
        mr::install(sim, mr::Workload::Crash4637);
    };
    b.buildModel = [] { return mr::buildModel(); };
    b.knownBugPairs = {
        detect::sitePair(mr::kCommitRead, mr::kKillWrite)};
    return b;
}

Benchmark
makeZk1144()
{
    Benchmark b;
    b.id = "ZK-1144";
    b.system = "mini-zookeeper";
    b.workload = "startup (leader election)";
    b.symptom = "Service unavailable";
    b.error = "LH";
    b.rootCause = "OV";
    b.mechanisms = {false, true, false, true, true};
    b.paper = {5, 1, 1, 5, 1, 1, 29, 8, 7, 0.8, 3.6, 4.8, 25, 1.9, 6.9};
    b.build = [](sim::Simulation &sim) {
        zk::install(sim, zk::Workload::Election1144);
    };
    b.buildModel = [] { return zk::buildModel(); };
    b.knownBugPairs = {
        detect::sitePair(zk::kElectReadHighest, zk::kVoteWriteHighest)};
    return b;
}

Benchmark
makeZk1270()
{
    Benchmark b;
    b.id = "ZK-1270";
    b.system = "mini-zookeeper";
    b.workload = "startup (epoch sync)";
    b.symptom = "Service unavailable";
    b.error = "LH";
    b.rootCause = "OV";
    b.mechanisms = {false, true, false, true, true};
    b.paper = {6, 2, 0, 6, 2, 0, 25, 10, 8, 0.2, 1.1, 4.5, 15, 1.3, 25};
    b.build = [](sim::Simulation &sim) {
        zk::install(sim, zk::Workload::Epoch1270);
    };
    b.buildModel = [] { return zk::buildModel(); };
    b.knownBugPairs = {
        detect::sitePair(zk::kLeaderHasZk2, zk::kFollowerInfoPut),
        detect::sitePair(zk::kLeaderHasZk3, zk::kFollowerInfoPut)};
    return b;
}

std::vector<Benchmark>
makeAll()
{
    std::vector<Benchmark> all;
    all.push_back(makeCa1011());
    all.push_back(makeHb4539());
    all.push_back(makeHb4729());
    all.push_back(makeMr3274());
    all.push_back(makeMr4637());
    all.push_back(makeZk1144());
    all.push_back(makeZk1270());
    return all;
}

} // namespace

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> all = makeAll();
    return all;
}

const Benchmark &
benchmark(const std::string &id)
{
    for (const Benchmark &b : allBenchmarks())
        if (b.id == id)
            return b;
    throw std::out_of_range("no such benchmark: " + id);
}

} // namespace dcatch::apps
