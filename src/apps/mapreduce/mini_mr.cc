#include "apps/mapreduce/mini_mr.hh"

#include <memory>

#include "apps/common.hh"
#include "runtime/shared.hh"

namespace dcatch::apps::mr {

using namespace dcatch::sim;

namespace {

/** Shared state of the mini MapReduce deployment.  Kept alive by the
 *  handler closures that capture the shared_ptr. */
struct State
{
    State(Node &am, Node &nm)
        : jMap(am, "jMap"),
          fetchCount(am, "fetchCount", 0),
          outputPath(am, "outputPath", ""),
          jobStatus(am, "jobStatus", "NEW"),
          nmReady(am, "nmReady", 0),
          statusPolls(am, "statusPolls", 0),
          nmNode(&nm)
    {
    }

    SharedMap<std::string, std::string> jMap;
    SharedVar<int> fetchCount;          ///< impact-free metrics
    SharedVar<std::string> outputPath;  ///< MR-4637 race target
    SharedVar<std::string> jobStatus;   ///< benign race target
    SharedVar<int> nmReady;             ///< serial (untraced-sync) pair
    std::unique_ptr<SharedMap<std::string, std::string>> nmLiveness;
    std::unique_ptr<SharedVar<int>> allocCount;
    SharedVar<int> statusPolls;         ///< impact-free metrics (both
                                        ///< workloads)
    bool nmReadyPlain = false;          ///< untraced fast-path flag
    Node *nmNode;
};

/** AM-side registrations. */
void
installAm(Simulation &sim, Node &am, const std::shared_ptr<State> &st)
{
    EventQueue &dispatch = am.addEventQueue("dispatch", 1);

    dispatch.on("register", [st](ThreadContext &ctx, const Event &e) {
        st->jMap.put(ctx, kRegPut, e.payload.get("jid"), "task-data");
    });

    dispatch.on("unregister", [st](ThreadContext &ctx, const Event &e) {
        st->jMap.erase(ctx, kUnregRemove, e.payload.get("jid"));
        st->fetchCount.write(ctx, kUnregReset, 0);
    });

    dispatch.on("commit", [st](ThreadContext &ctx, const Event &) {
        std::string out = st->outputPath.read(ctx, kCommitRead);
        if (out.empty())
            ctx.throwUncaught(kCommitThrow,
                              "commit after output path cleared");
        st->jobStatus.write(ctx, kCommitStatus, "COMMITTED");
    });

    // The Figure 4 allocation flow: register the task data, then ask
    // the RM for a container, then launch it on the NM.
    dispatch.on("allocate", [st](ThreadContext &ctx, const Event &e) {
        std::string jid = e.payload.get("jid");
        Payload reply = ctx.rpcCall(kAmCallAllocate, "RM",
                                    "allocateContainer",
                                    Payload{}.set("jid", jid));
        ctx.send(kSubmitLaunch, st->nmNode->name(), "launch",
                 Payload{}
                     .set("jid", jid)
                     .set("container", reply.get("container")));
    });

    am.registerRpc("submitJob",
                   [st](ThreadContext &ctx, const Payload &args) {
                       std::string jid = args.get("jid");
                       st->outputPath.write(ctx, kSubmitOutWrite,
                                            "/out/" + jid);
                       // Allocation races the registration (the
                       // Figure 1 "(1) Assign Task" path): the NM's
                       // retrieval may reach jMap before the register
                       // handler has populated it — exactly what the
                       // retry loop of Figure 2 tolerates.
                       ctx.node().queue("dispatch").enqueue(
                           ctx, kSubmitEnqAlloc, "allocate",
                           Payload{}.set("jid", jid));
                       ctx.node().queue("dispatch").enqueue(
                           ctx, kSubmitEnq, "register",
                           Payload{}.set("jid", jid));
                       return Payload{}.set("ok", "1");
                   });

    am.registerRpc("getTask",
                   [st](ThreadContext &ctx, const Payload &args) {
                       st->fetchCount.write(ctx, kGetTaskCount, 1);
                       auto task = st->jMap.get(ctx, kGetTaskRead,
                                                args.get("jid"));
                       return Payload{}.set("task", task.value_or(""));
                   });

    am.registerRpc("cancelJob",
                   [st](ThreadContext &ctx, const Payload &args) {
                       ctx.node().queue("dispatch").enqueue(
                           ctx, kCancelEnq, "unregister",
                           Payload{}.set("jid", args.get("jid")));
                       return Payload{}.set("ok", "1");
                   });

    am.registerRpc("taskDone",
                   [st](ThreadContext &ctx, const Payload &args) {
                       st->jobStatus.write(ctx, kTaskDoneStatus,
                                           "SUCCEEDED");
                       st->statusPolls.write(ctx, kTaskDoneMetric, 0);
                       ctx.node().queue("dispatch").enqueue(
                           ctx, kTaskDoneEnqCommit, "commit",
                           Payload{}.set("jid", args.get("jid")));
                       return Payload{};
                   });

    am.registerRpc("getStatus",
                   [st](ThreadContext &ctx, const Payload &) {
                       st->statusPolls.write(ctx, kStatusPollMetric, 1);
                       std::string s = st->jobStatus.read(ctx, kStatusRead);
                       if (s == "__corrupt")
                           ctx.throwUncaught(kStatusThrow,
                                             "corrupt job status");
                       return Payload{}.set("status", s);
                   });

    am.registerVerb("nmRegister",
                    [st](ThreadContext &ctx, const Payload &) {
                        st->nmReady.write(ctx, kNmReadyWrite, 1);
                        st->nmReadyPlain = true;
                    });

    // Assigner thread: waits for NM registration through an untraced
    // fast-path flag (synchronization DCatch's HB model cannot see),
    // then reads the traced mirror — a "serial" report by design.
    sim.spawn(nullptr, am, "AM.assigner", [st](ThreadContext &ctx) {
        ctx.blockUntil([st] { return st->nmReadyPlain; });
        Frame f(ctx, "assigner", ScopeKind::Event, "e:assigner");
        if (st->nmReady.read(ctx, kNmReadyRead) != 1)
            ctx.throwUncaught(kNmReadyThrow, "assigner saw unready NM");
    });
}

/** RM-side registrations (Figure 4's Resource Manager). */
void
installRm(Simulation &sim, Node &rm, const std::shared_ptr<State> &st)
{
    st->nmLiveness =
        std::make_unique<SharedMap<std::string, std::string>>(
            rm, "nmLiveness");
    st->allocCount = std::make_unique<SharedVar<int>>(rm, "allocCount",
                                                      0);

    rm.registerRpc(
        "allocateContainer",
        [st](ThreadContext &ctx, const Payload &args) {
            // Benign race against the heartbeat handler: a missing
            // liveness entry only degrades placement, the allocation
            // proceeds either way (but static analysis conservatively
            // sees a path to the fatal log below).
            auto alive =
                st->nmLiveness->get(ctx, kRmAllocRead, "NM");
            if (alive && *alive == "__zombie")
                ctx.fatalLog(kRmAllocFatal,
                             "allocated container on a zombie NM");
            st->allocCount->write(ctx, kRmAllocCount, 1);
            return Payload{}.set("container",
                                 "c-" + args.get("jid"));
        });

    rm.registerVerb("nmHeartbeat",
                    [st](ThreadContext &ctx, const Payload &msg) {
                        st->nmLiveness->put(ctx, kRmHbWrite,
                                            msg.get("from", "NM"),
                                            "alive");
                    });
    (void)sim;
}

/** NM-side registrations. */
void
installNm(Simulation &sim, Node &nm, const std::shared_ptr<State> &st)
{
    (void)st;
    nm.registerVerb("launch", [](ThreadContext &ctx, const Payload &msg) {
        std::string jid = msg.get("jid");
        // One container thread per launched task (Rule-Tfork edge).
        ctx.sim().spawn(
            &ctx, ctx.node(), "NM.container-" + jid,
            [jid](ThreadContext &tctx) {
                std::string task;
                bool got = tctx.retryUntil(kTaskLoopExit, [&] {
                    Payload reply = tctx.rpcCall(kNmCallGetTask, "AM",
                                                 "getTask",
                                                 Payload{}.set("jid", jid));
                    task = reply.get("task");
                    return !task.empty();
                });
                if (!got)
                    return; // hung (LoopHang already recorded)
                tctx.pause(2); // "run" the task
                tctx.rpcCall(kNmCallDone, "AM", "taskDone",
                             Payload{}.set("jid", jid));
            },
            /*daemon=*/false, "mr.nm.launch/spawn.container");
    });

    // NM startup: register with the AM, heartbeat the RM.
    sim.spawn(nullptr, nm, "NM.startup", [](ThreadContext &ctx) {
        ctx.send("mr.nm.startup/send.register", "AM", "nmRegister",
                 Payload{});
        for (int round = 0; round < 3; ++round) {
            ctx.send(kNmHbSend, "RM", "nmHeartbeat",
                     Payload{}.set("from", "NM"));
            ctx.pause(12);
        }
    });
}

} // namespace

void
install(Simulation &sim, Workload workload, int jobs)
{
    Node &am = sim.addNode("AM");
    Node &nm = sim.addNode("NM");
    Node &rm = sim.addNode("RM");
    Node &client = sim.addNode("client");

    auto st = std::make_shared<State>(am, nm);
    installAm(sim, am, st);
    installNm(sim, nm, st);
    installRm(sim, rm, st);
    installBackgroundLoad(sim, am, 700);
    installBackgroundLoad(sim, nm, 500);
    installBackgroundLoad(sim, rm, 200);
    installBackgroundLoad(sim, client, 400);

    sim.spawn(nullptr, client, "client.driver",
              [workload, jobs](ThreadContext &ctx) {
                  ctx.pause(5); // let services settle
                  for (int j = 1; j <= jobs; ++j)
                      ctx.rpcCall(kClientSubmit, "AM", "submitJob",
                                  Payload{}.set("jid",
                                                "j" + std::to_string(j)));
                  if (workload == Workload::Hang3274) {
                      ctx.pause(60); // tasks normally fetched by now
                      ctx.rpcCall(kClientStatus, "AM", "getStatus",
                                  Payload{});
                      ctx.rpcCall(kClientCancel, "AM", "cancelJob",
                                  Payload{}.set("jid", "j1"));
                      ctx.pause(30 + 10 * jobs);
                  } else {
                      ctx.pause(90 + 10 * jobs); // commits normally done
                      ctx.rpcCall(kClientStatus, "AM", "getStatus",
                                  Payload{});
                      ctx.rpcCall(kClientKill, "AM", "killJob",
                                  Payload{}.set("jid", "j1"));
                      ctx.pause(20);
                  }
              });

    if (workload == Workload::Crash4637) {
        am.registerRpc("killJob",
                       [st](ThreadContext &ctx, const Payload &) {
                           st->outputPath.write(ctx, kKillWrite, "");
                           return Payload{}.set("ok", "1");
                       });
    }
}

model::ProgramModel
buildModel()
{
    model::ModelBuilder b;

    b.fn("AM.submitJob")
        .rpc()
        .write(kSubmitOutWrite, "var:AM/outputPath")
        .inst(kSubmitEnq)
        .inst(kSubmitEnqAlloc);

    b.fn("AM.register").write(kRegPut, "map:AM/jMap");

    b.fn("AM.unregister")
        .write(kUnregRemove, "map:AM/jMap")
        .write(kUnregReset, "var:AM/fetchCount");

    // getTask: the jMap read feeds the RPC's return value; the NM
    // container's loop exit depends on the call (distributed impact +
    // pull-protocol shape).
    b.fn("AM.getTask")
        .rpc()
        .write(kGetTaskCount, "var:AM/fetchCount")
        .read(kGetTaskRead, "map:AM/jMap")
        .returns({kGetTaskRead});

    b.fn("AM.cancelJob").rpc().inst(kCancelEnq);

    b.fn("AM.taskDone")
        .rpc()
        .write(kTaskDoneStatus, "var:AM/jobStatus")
        .inst(kTaskDoneEnqCommit);

    b.fn("AM.commit")
        .read(kCommitRead, "var:AM/outputPath")
        .failure(kCommitThrow, sim::FailureKind::UncaughtException)
        .dep(kCommitThrow, {kCommitRead})
        .write(kCommitStatus, "var:AM/jobStatus");

    b.fn("AM.killJob").rpc().write(kKillWrite, "var:AM/outputPath");

    b.fn("AM.getStatus")
        .rpc()
        .read(kStatusRead, "var:AM/jobStatus")
        .failure(kStatusThrow, sim::FailureKind::UncaughtException)
        .dep(kStatusThrow, {kStatusRead})
        .returns({kStatusRead});

    b.fn("AM.nmRegister").write(kNmReadyWrite, "var:AM/nmReady");

    b.fn("AM.allocate")
        .rpcCall(kAmCallAllocate, "RM.allocateContainer")
        .inst(kSubmitLaunch)
        .dep(kSubmitLaunch, {kAmCallAllocate});

    b.fn("RM.allocateContainer")
        .rpc()
        .read(kRmAllocRead, "map:RM/nmLiveness")
        .failure(kRmAllocFatal, sim::FailureKind::FatalLog)
        .dep(kRmAllocFatal, {kRmAllocRead})
        .write(kRmAllocCount, "var:RM/allocCount");

    b.fn("RM.nmHeartbeat").write(kRmHbWrite, "map:RM/nmLiveness");

    b.fn("AM.assigner")
        .read(kNmReadyRead, "var:AM/nmReady")
        .failure(kNmReadyThrow, sim::FailureKind::UncaughtException)
        .dep(kNmReadyThrow, {kNmReadyRead});

    b.fn("NM.container")
        .rpcCall(kNmCallGetTask, "AM.getTask")
        .loopExit(kTaskLoopExit)
        .dep(kTaskLoopExit, {kNmCallGetTask})
        .call(kNmCallDone, "AM.taskDone");

    b.fn("client.driver")
        .rpcCall(kClientSubmit, "AM.submitJob")
        .rpcCall(kClientStatus, "AM.getStatus")
        .rpcCall(kClientCancel, "AM.cancelJob")
        .rpcCall(kClientKill, "AM.killJob");

    return b.build();
}

} // namespace dcatch::apps::mr
