/**
 * @file
 * Mini Hadoop MapReduce: client / Application Master (AM) / Node
 * Manager (NM), reproducing the concurrency structure of the paper's
 * two MapReduce benchmarks.
 *
 * MR-3274 (Figures 1 and 2 of the paper): the AM registers task data
 * in jMap via a "register" event; the NM container polls the
 * getTask RPC in a retry loop; a client cancel enqueues "unregister",
 * whose jMap.remove may land between the assignment and the NM's
 * retrieval — getTask then returns null forever and the NM container
 * hangs (distributed hang, order violation).
 *
 * MR-4637: a client killJob RPC clears the job's output path
 * concurrently with the commit event handler reading it; committing
 * after the kill crashes the job master with an uncaught exception
 * (local explicit error, order violation).
 *
 * The app also embeds, deliberately:
 *  - the benign pull-synchronized pair (jMap.put vs. getTask's read)
 *    that loop-analysis must suppress,
 *  - an impact-free metrics race that static pruning must remove,
 *  - an untraced-synchronization pair (NM registration) that yields a
 *    "serial" report, like ZooKeeper's waitForEpoch in the paper,
 *  - a benign jobStatus race that survives static pruning (the model
 *    over-approximates, as static analysis does) but fails in
 *    neither order when triggered.
 */

#ifndef DCATCH_APPS_MAPREDUCE_MINI_MR_HH
#define DCATCH_APPS_MAPREDUCE_MINI_MR_HH

#include "model/program_model.hh"
#include "runtime/sim.hh"

namespace dcatch::apps::mr {

/// @{ @name Static site ids (shared between code, model, and traces)
inline constexpr const char *kSubmitOutWrite = "mr.am.submit/out.write";
inline constexpr const char *kSubmitEnq = "mr.am.submit/enq.register";
inline constexpr const char *kSubmitEnqAlloc = "mr.am.submit/enq.allocate";
inline constexpr const char *kAmCallAllocate =
    "mr.am.allocate/call.allocateContainer";
inline constexpr const char *kSubmitLaunch = "mr.am.allocate/send.launch";
inline constexpr const char *kRmAllocRead =
    "mr.rm.allocateContainer/liveness.read";
inline constexpr const char *kRmAllocCount =
    "mr.rm.allocateContainer/count.write";
inline constexpr const char *kRmAllocFatal =
    "mr.rm.allocateContainer/fatal";
inline constexpr const char *kRmHbWrite =
    "mr.rm.nmHeartbeat/liveness.write";
inline constexpr const char *kNmHbSend = "mr.nm.startup/send.heartbeat";
inline constexpr const char *kRegPut = "mr.am.register/jmap.put";
inline constexpr const char *kUnregRemove = "mr.am.unregister/jmap.remove";
inline constexpr const char *kUnregReset = "mr.am.unregister/fetch.reset";
inline constexpr const char *kGetTaskRead = "mr.am.getTask/jmap.read";
inline constexpr const char *kGetTaskCount = "mr.am.getTask/fetch.incr";
inline constexpr const char *kCancelEnq = "mr.am.cancel/enq.unregister";
inline constexpr const char *kTaskDoneStatus = "mr.am.taskDone/status.write";
inline constexpr const char *kTaskDoneEnqCommit = "mr.am.taskDone/enq.commit";
inline constexpr const char *kCommitRead = "mr.am.commit/out.read";
inline constexpr const char *kCommitThrow = "mr.am.commit/throw";
inline constexpr const char *kCommitStatus = "mr.am.commit/status.write";
inline constexpr const char *kKillWrite = "mr.am.kill/out.clear";
inline constexpr const char *kStatusRead = "mr.am.getStatus/status.read";
inline constexpr const char *kStatusPollMetric =
    "mr.am.getStatus/polls.write";
inline constexpr const char *kTaskDoneMetric =
    "mr.am.taskDone/polls.write";
inline constexpr const char *kStatusThrow = "mr.am.getStatus/throw";
inline constexpr const char *kNmReadyWrite = "mr.am.nmRegister/ready.write";
inline constexpr const char *kNmReadyRead = "mr.am.assigner/ready.read";
inline constexpr const char *kNmReadyThrow = "mr.am.assigner/throw";
inline constexpr const char *kNmCallGetTask = "mr.nm.container/call.getTask";
inline constexpr const char *kTaskLoopExit = "mr.nm.container/taskloop.exit";
inline constexpr const char *kNmCallDone = "mr.nm.container/call.taskDone";
inline constexpr const char *kClientSubmit = "mr.client/call.submit";
inline constexpr const char *kClientCancel = "mr.client/call.cancel";
inline constexpr const char *kClientKill = "mr.client/call.kill";
inline constexpr const char *kClientStatus = "mr.client/call.getStatus";
/// @}

/** Which of the two MapReduce workloads to drive. */
enum class Workload {
    Hang3274,  ///< startup + wordcount + cancel (Figure 1 bug)
    Crash4637, ///< startup + wordcount + kill
};

/**
 * Build the topology and workload drivers on @p sim.  The deployment
 * follows the paper's Figure 4: an Application Master (AM), a Node
 * Manager (NM), and a Resource Manager (RM); the AM allocates a
 * container from the RM before launching the task on the NM, the NM
 * heartbeats the RM, and each node mixes RPC worker threads, event
 * queues with handler pools, and regular threads.
 * @param jobs number of jobs the client submits (wordcount tasks);
 *        the race-relevant cancel/kill always targets job "j1", so
 *        scaling @p jobs grows the trace without changing the bugs —
 *        used by the scalability bench
 */
void install(sim::Simulation &sim, Workload workload, int jobs = 1);

/** The MapReduce program model (shared by both workloads). */
model::ProgramModel buildModel();

} // namespace dcatch::apps::mr

#endif // DCATCH_APPS_MAPREDUCE_MINI_MR_HH
