/**
 * @file
 * Mini Cassandra: a gossip-based ring (cass1 coordinator, cass2
 * bootstrapping, client) over asynchronous socket messages plus a
 * SEDA-style mutation stage, reproducing the concurrency structure of
 * the paper's CA-1011 benchmark (startup -> data backup failure,
 * atomicity violation).
 *
 * cass2 announces its token via gossip; cass1's gossip verb handler
 * merges it into the token map.  A client mutation routed through
 * cass1's mutation stage reads the token map to pick the backup
 * replica — reading before the gossip merge loses the backup (a
 * severe logged error).  A schema-version race is benign: the next
 * gossip round re-converges it.  cass1's ring-watcher loop waits for
 * the bootstrap token with while-loop custom synchronization that the
 * loop analysis must recognise and suppress.
 */

#ifndef DCATCH_APPS_CASSANDRA_MINI_CASSANDRA_HH
#define DCATCH_APPS_CASSANDRA_MINI_CASSANDRA_HH

#include "model/program_model.hh"
#include "runtime/sim.hh"

namespace dcatch::apps::ca {

/// @{ @name Static site ids
inline constexpr const char *kGossipApplyToken =
    "ca.gossip/tokenMap.put";
inline constexpr const char *kGossipSchema =
    "ca.gossip/schemaVersion.write";
inline constexpr const char *kGossipHeartbeat =
    "ca.gossip/heartbeat.write";
inline constexpr const char *kMutateReadToken =
    "ca.mutate/tokenMap.read";
inline constexpr const char *kMutateBackupFail = "ca.mutate/backup.fail";
inline constexpr const char *kMutateSchemaRead =
    "ca.mutate/schema.read";
inline constexpr const char *kMutateSchemaFail =
    "ca.mutate/schema.fail";
inline constexpr const char *kMutateHint = "ca.mutate/hint.write";
inline constexpr const char *kMutateEnq = "ca.mutationVerb/enq";
inline constexpr const char *kSchemaCheckRead =
    "ca.schemaCheck/schema.read";
inline constexpr const char *kSchemaCheckFatal =
    "ca.schemaCheck/fatal";
inline constexpr const char *kSchemaCheckRegossip =
    "ca.schemaCheck/send.regossip";
inline constexpr const char *kRingWatchContains =
    "ca.ringWatch/tokenMap.contains";
inline constexpr const char *kRingWatchLoopExit =
    "ca.ringWatch/loop.exit";
inline constexpr const char *kRingWatchFail = "ca.ringWatch/fatal";
inline constexpr const char *kBootstrapAnnounce =
    "ca.bootstrap/send.gossip";
inline constexpr const char *kBootstrapHeartbeat =
    "ca.bootstrap/heartbeat.write";
inline constexpr const char *kClientMutate = "ca.client/send.mutate";
/// @}

/** Build the topology and workload drivers on @p sim. */
void install(sim::Simulation &sim);

/** The Cassandra program model. */
model::ProgramModel buildModel();

} // namespace dcatch::apps::ca

#endif // DCATCH_APPS_CASSANDRA_MINI_CASSANDRA_HH
