#include "apps/cassandra/mini_cassandra.hh"

#include <memory>

#include "apps/common.hh"
#include "runtime/shared.hh"

namespace dcatch::apps::ca {

using namespace dcatch::sim;

namespace {

/** Shared state of the mini Cassandra deployment (cass1 side). */
struct State
{
    explicit State(Node &cass1)
        : tokenMap(cass1, "tokenMap"),
          schemaVersion(cass1, "schemaVersion", "v1"),
          heartbeat(cass1, "heartbeat", 0),
          hintCount(cass1, "hintCount", 0)
    {
    }

    SharedMap<std::string, std::string> tokenMap;
    SharedVar<std::string> schemaVersion;
    SharedVar<int> heartbeat; ///< impact-free metrics race
    SharedVar<int> hintCount;
};

void
installCass1(Simulation &sim, Node &cass1, const std::shared_ptr<State> &st)
{
    // SEDA-style mutation stage: one single-consumer queue.
    EventQueue &mutation_q = cass1.addEventQueue("mutationStage", 1);

    mutation_q.on("mutate", [st](ThreadContext &ctx, const Event &) {
        // Pick the backup replica for the bootstrapping endpoint.
        auto token = st->tokenMap.get(ctx, kMutateReadToken, "cass2");
        if (!token) {
            ctx.fatalLog(kMutateBackupFail,
                         "data backup failure: bootstrap replica "
                         "unknown to coordinator");
            return;
        }
        // Writes are stamped with the current schema; a coordinator
        // still on the pre-bootstrap schema must reject the write
        // (the second CA-1011 facet: both the token map and the
        // schema must have converged before mutations are safe).
        std::string schema =
            st->schemaVersion.read(ctx, kMutateSchemaRead);
        if (schema != "v2") {
            ctx.fatalLog(kMutateSchemaFail,
                         "mutation stamped with divergent schema");
            return;
        }
        st->hintCount.write(ctx, kMutateHint, 1);
        // Impact-free heartbeat bump racing the gossip handler's
        // (fodder for static pruning).
        st->heartbeat.write(ctx, "ca.mutate/heartbeat.write", 2);
    });

    cass1.registerVerb("gossip", [st](ThreadContext &ctx,
                                      const Payload &msg) {
        st->tokenMap.put(ctx, kGossipApplyToken, msg.get("endpoint"),
                         msg.get("token"));
        st->schemaVersion.write(ctx, kGossipSchema,
                                msg.get("schema", "v1"));
        st->heartbeat.write(ctx, kGossipHeartbeat, 1);
    });

    cass1.registerVerb("mutate", [](ThreadContext &ctx, const Payload &) {
        ctx.node().queue("mutationStage").enqueue(ctx, kMutateEnq,
                                                  "mutate");
    });

    // Schema checker: races with the gossip handler on schemaVersion,
    // but a divergent version only causes a re-gossip request — the
    // inconsistency is cured by the next round (benign by design; the
    // model over-approximates the path to the fatal log, as static
    // analysis does, so static pruning keeps it).
    sim.spawn(nullptr, cass1, "cass1.schemaCheck",
              [st](ThreadContext &ctx) {
                  Frame f(ctx, "schemaCheck", ScopeKind::Message,
                          "m:schemaCheck");
                  ctx.pause(18);
                  std::string v =
                      st->schemaVersion.read(ctx, kSchemaCheckRead);
                  if (v == "__impossible")
                      ctx.fatalLog(kSchemaCheckFatal,
                                   "schema permanently diverged");
                  // A divergent version is benign: the next gossip
                  // round re-converges it on its own.
              });

    // Ring watcher: while-loop custom synchronization on the token
    // map (suppressed by the loop analysis, like the paper's
    // intra-node while-loop synchronization).
    sim.spawn(nullptr, cass1, "cass1.ringWatch",
              [st](ThreadContext &ctx) {
                  Frame f(ctx, "ringWatch", ScopeKind::Message,
                          "m:ringWatch");
                  bool seen = ctx.retryUntil(kRingWatchLoopExit, [&] {
                      return st->tokenMap.contains(
                          ctx, kRingWatchContains, "cass2");
                  });
                  if (!seen)
                      ctx.fatalLog(kRingWatchFail,
                                   "bootstrap token never appeared");
              });
}

void
installCass2(Simulation &sim, Node &cass2)
{
    // Bootstrap: announce the chosen token via gossip.
    sim.spawn(nullptr, cass2, "cass2.bootstrap", [](ThreadContext &ctx) {
        Frame f(ctx, "bootstrap", ScopeKind::Message, "m:bootstrap");
        ctx.pause(6);
        ctx.send(kBootstrapAnnounce, "cass1", "gossip",
                 Payload{}
                     .set("endpoint", "cass2")
                     .set("token", "42")
                     .set("schema", "v2"));
    });
}

} // namespace

void
install(Simulation &sim)
{
    Node &cass1 = sim.addNode("cass1");
    Node &cass2 = sim.addNode("cass2");
    Node &client = sim.addNode("client");

    auto st = std::make_shared<State>(cass1);
    installCass1(sim, cass1, st);
    installCass2(sim, cass2);
    installBackgroundLoad(sim, cass1, 500);
    installBackgroundLoad(sim, cass2, 400);
    installBackgroundLoad(sim, client, 300);

    // Client issues one mutation once the ring has normally settled.
    sim.spawn(nullptr, client, "client.driver", [](ThreadContext &ctx) {
        ctx.pause(45);
        ctx.send(kClientMutate, "cass1", "mutate", Payload{});
        ctx.pause(25);
    });
}

model::ProgramModel
buildModel()
{
    model::ModelBuilder b;

    b.fn("cass1.gossipHandler")
        .write(kGossipApplyToken, "map:cass1/tokenMap")
        .write(kGossipSchema, "var:cass1/schemaVersion")
        .write(kGossipHeartbeat, "var:cass1/heartbeat");

    b.fn("cass1.mutationStage")
        .read(kMutateReadToken, "map:cass1/tokenMap")
        .failure(kMutateBackupFail, sim::FailureKind::FatalLog)
        .dep(kMutateBackupFail, {kMutateReadToken})
        .read(kMutateSchemaRead, "var:cass1/schemaVersion")
        .failure(kMutateSchemaFail, sim::FailureKind::FatalLog)
        .dep(kMutateSchemaFail, {kMutateSchemaRead})
        .write(kMutateHint, "var:cass1/hintCount");

    b.fn("cass1.mutateVerb").inst(kMutateEnq);

    b.fn("cass1.schemaCheck")
        .read(kSchemaCheckRead, "var:cass1/schemaVersion")
        .failure(kSchemaCheckFatal, sim::FailureKind::FatalLog)
        .dep(kSchemaCheckFatal, {kSchemaCheckRead})
        ;

    b.fn("cass1.ringWatch")
        .read(kRingWatchContains, "map:cass1/tokenMap")
        .loopExit(kRingWatchLoopExit)
        .dep(kRingWatchLoopExit, {kRingWatchContains})
        .failure(kRingWatchFail, sim::FailureKind::FatalLog)
        .dep(kRingWatchFail, {kRingWatchLoopExit});

    b.fn("cass2.bootstrap").inst(kBootstrapAnnounce);

    b.fn("client.driver").inst(kClientMutate);

    return b.build();
}

} // namespace dcatch::apps::ca
