#include "detect/streaming.hh"

#include <algorithm>

namespace dcatch::detect {

StreamingDetector::StreamingDetector(Options options)
    : options_(options)
{
    if (options_.window == 0)
        options_.window = 1;
    if (options_.retainEpochs < 1)
        options_.retainEpochs = 1;
}

bool
StreamingDetector::noteRecord()
{
    return ++recordsInEpoch_ >= options_.window;
}

void
StreamingDetector::noteAccess(trace::SymId var, int vertex, bool isWrite)
{
    epochAccesses_.emplace_back(var, vertex, isWrite);
    onlineIndex_[var].push_back({vertex, currentEpoch_, isWrite});
}

void
StreamingDetector::closeEpoch(const hb::HbGraph &graph,
                              const EmitPair &emit,
                              const PairFilter &skip)
{
    for (const auto &[var, vertex, is_write] : epochAccesses_) {
        const auto it = onlineIndex_.find(var);
        if (it == onlineIndex_.end())
            continue;
        for (const OnlineAccess &other : it->second) {
            if (other.vertex == vertex)
                break;
            if (!is_write && !other.isWrite)
                continue;
            if (skip && skip(other.vertex, vertex))
                continue;
            if (!graph.concurrent(other.vertex, vertex))
                continue;
            emit(currentEpoch_, other.vertex, vertex);
        }
    }

    evict(currentEpoch_);
    stats_.maxIndexBytes =
        std::max(stats_.maxIndexBytes, indexBytes());
    ++stats_.epochsClosed;
    ++currentEpoch_;
    recordsInEpoch_ = 0;
    epochAccesses_.clear();
}

void
StreamingDetector::evict(std::uint32_t closedEpoch)
{
    // Keep accesses from epochs > closedEpoch - retainEpochs; older
    // ones have been tested against every window they overlap.
    if (closedEpoch + 1 <
        static_cast<std::uint32_t>(options_.retainEpochs))
        return;
    std::uint32_t min_keep =
        closedEpoch + 1 -
        static_cast<std::uint32_t>(options_.retainEpochs);
    for (auto it = onlineIndex_.begin(); it != onlineIndex_.end();) {
        std::deque<OnlineAccess> &list = it->second;
        while (!list.empty() && list.front().epoch < min_keep) {
            list.pop_front();
            ++stats_.evictedAccesses;
        }
        if (list.empty())
            it = onlineIndex_.erase(it);
        else
            ++it;
    }
}

std::size_t
StreamingDetector::indexBytes() const
{
    std::size_t bytes = epochAccesses_.size() *
                        sizeof(std::tuple<trace::SymId, int, bool>);
    for (const auto &[var, list] : onlineIndex_)
        bytes += sizeof(var) + list.size() * sizeof(OnlineAccess);
    return bytes;
}

void
StreamingDetector::reset()
{
    epochAccesses_.clear();
    onlineIndex_.clear();
    recordsInEpoch_ = 0;
}

void
StreamingDetector::prepassShard(
    const AccessPlan &plan, const ChainFrontierIndex &snapshot,
    std::size_t shard, std::size_t shards, std::size_t window,
    std::vector<std::uint64_t> &orderedPairs,
    std::unordered_set<std::uint32_t> &epochsTouched)
{
    if (window == 0)
        window = 1;
    int bound = plan.bound;
    for (std::size_t u = shard; u < plan.units.size(); u += shards) {
        const AccessPlan::Unit &unit = plan.units[u];
        const std::vector<std::size_t> &varGroups =
            plan.byVar.at(unit.var);
        std::size_t gi = unit.gi;
        for (std::size_t gj = gi; gj < varGroups.size(); ++gj) {
            const AccessPlan::Group &g1 = plan.groups[varGroups[gi]];
            const AccessPlan::Group &g2 = plan.groups[varGroups[gj]];
            if (!g1.isWrite && !g2.isWrite)
                continue; // conflicting requires >= 1 write
            int n1 = std::min<int>(
                bound, static_cast<int>(g1.instances.size()));
            int n2 = std::min<int>(
                bound, static_cast<int>(g2.instances.size()));
            for (int i = 0; i < n1; ++i) {
                int lo = (gi == gj) ? i + 1 : 0;
                for (int j = lo; j < n2; ++j) {
                    int u1 = g1.instances[static_cast<std::size_t>(i)];
                    int v1 = g2.instances[static_cast<std::size_t>(j)];
                    if (u1 == v1)
                        continue;
                    int a = u1 < v1 ? u1 : v1;
                    int b = u1 < v1 ? v1 : u1;
                    epochsTouched.insert(static_cast<std::uint32_t>(
                        static_cast<std::size_t>(b) / window));
                    // Vertex ids are a topological order, so only the
                    // forward direction can be reachable; one snapshot
                    // query decides the pair.
                    if (snapshot.reaches(a, b))
                        orderedPairs.push_back(
                            OrderedMemo::packPair(a, b));
                }
            }
        }
    }
}

} // namespace dcatch::detect
