/**
 * @file
 * Shared epoch-windowed streaming detection machinery.
 *
 * Two call sites stream detection work while the happens-before graph
 * is still growing, and both run over this state:
 *
 *  - The serve daemon's Session (docs/serve.md): every `window`
 *    ingested records close an epoch; the epoch's memory accesses are
 *    tested against the accesses retained from the last `retainEpochs`
 *    epochs and new candidates are emitted online.  Accesses older
 *    than the retention window are evicted, bounding the index
 *    regardless of run length.
 *
 *  - The batch pipeline's closure overlap (docs/hb_auto_engine.md,
 *    "Overlapped detection"): while Rule-Eserial closure runs, pre-pass
 *    shards walk the detector's (var, group) work units against a
 *    read-only pre-closure snapshot of the chain-frontier index and
 *    collect every access pair the snapshot already proves ordered.
 *    HB edges only accumulate during construction, so those verdicts
 *    are final: the merged OrderedMemo lets the post-closure detect
 *    skip the full reachability query for memoized pairs without
 *    changing a byte of its output.
 */

#ifndef DCATCH_DETECT_STREAMING_HH
#define DCATCH_DETECT_STREAMING_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/chain_frontier.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"

namespace dcatch::detect {

/**
 * Vertex pairs proven ordered against a (possibly pre-closure)
 * snapshot of the HB graph.  Sound as a negative-concurrency oracle
 * for the *final* graph because ordering is monotone: construction
 * only ever adds edges, so `ordered(u, v)` here implies
 * `!graph.concurrent(u, v)` after closure, for any memo coverage.
 */
class OrderedMemo
{
  public:
    /** Canonical packed key for an unordered vertex pair. */
    static std::uint64_t
    packPair(int u, int v)
    {
        std::uint32_t lo = static_cast<std::uint32_t>(u < v ? u : v);
        std::uint32_t hi = static_cast<std::uint32_t>(u < v ? v : u);
        return (static_cast<std::uint64_t>(lo) << 32) | hi;
    }

    void
    addPacked(const std::vector<std::uint64_t> &pairs)
    {
        set_.insert(pairs.begin(), pairs.end());
    }

    bool
    ordered(int u, int v) const
    {
        return set_.find(packPair(u, v)) != set_.end();
    }

    std::size_t size() const { return set_.size(); }
    bool empty() const { return set_.empty(); }

  private:
    std::unordered_set<std::uint64_t> set_;
};

/**
 * Epoch-windowed streaming detection state (hoisted from the serve
 * Session so the batch pipeline shares it).  The owner drives it:
 * noteRecord()/noteAccess() per ingested record, closeEpoch() when
 * noteRecord() reports the window full (and once more at
 * end-of-stream if the last window is partial).  Candidate
 * deduplication and wire formatting stay with the owner — the emit
 * callback receives raw vertex pairs.
 */
class StreamingDetector
{
  public:
    struct Options
    {
        std::size_t window = 4096; ///< records per epoch (>= 1)
        int retainEpochs = 2; ///< closed epochs kept in the index
    };

    struct Stats
    {
        std::size_t epochsClosed = 0;
        std::size_t evictedAccesses = 0; ///< index entries evicted
        std::size_t maxIndexBytes = 0;   ///< index high-water mark
    };

    /** Concurrent pair found when closing an epoch: @p a is the
     *  earlier (retained) access, @p b the current epoch's. */
    using EmitPair =
        std::function<void(std::uint32_t epoch, int a, int b)>;

    /**
     * Optional pre-filter consulted before the (expensive)
     * reachability test: return true to skip the pair entirely.  Only
     * sound for pairs whose emission the owner would discard anyway
     * (e.g. a dedup key it has already emitted) — a skipped pair is
     * never tested and never emitted, so filtering anything else
     * changes the output.
     */
    using PairFilter = std::function<bool(int a, int b)>;

    explicit StreamingDetector(Options options);

    /** Count one ingested record toward the current epoch.
     *  @return true when the window filled and the owner should flush
     *  its graph and call closeEpoch() */
    bool noteRecord();

    /** Register a kept memory-access vertex of the current epoch. */
    void noteAccess(trace::SymId var, int vertex, bool isWrite);

    /**
     * Close the current epoch: test its accesses against everything
     * retained (each access stops at itself in the per-variable list,
     * so every (earlier, later) pair — including same-epoch pairs —
     * is tested exactly once), emit the concurrent ones, then evict
     * entries older than the retention window.  The owner must have
     * flushed @p graph's incremental closure first.  @p skip, when
     * set, short-circuits pairs the owner will drop (see PairFilter)
     * before their happens-before query — the serve hot path's main
     * saving once a (var, callstack-pair) key has already produced a
     * candidate.
     */
    void closeEpoch(const hb::HbGraph &graph, const EmitPair &emit,
                    const PairFilter &skip = {});

    std::uint32_t currentEpoch() const { return currentEpoch_; }
    const Stats &stats() const { return stats_; }

    /** Heap footprint of the online index (high-water tracked). */
    std::size_t indexBytes() const;

    /** Drop all retained state (quarantine / finalize). */
    void reset();

    /**
     * Batch-overlap pre-pass over shard @p shard of @p shards: walk
     * the plan's work units strided, enumerate exactly the instance
     * pairs detect() will test (same write filter, instance bound,
     * and triangular iteration), and record every pair the read-only
     * @p snapshot proves ordered, packed for OrderedMemo::addPacked.
     * @p epochsTouched collects the vertex-window buckets
     * (later-vertex / window) the shard streamed, for the
     * overlappedEpochs metric.
     */
    static void prepassShard(const AccessPlan &plan,
                             const ChainFrontierIndex &snapshot,
                             std::size_t shard, std::size_t shards,
                             std::size_t window,
                             std::vector<std::uint64_t> &orderedPairs,
                             std::unordered_set<std::uint32_t>
                                 &epochsTouched);

  private:
    /** One retained access in the online per-variable index. */
    struct OnlineAccess
    {
        int vertex = -1;
        std::uint32_t epoch = 0;
        bool isWrite = false;
    };

    void evict(std::uint32_t closedEpoch);

    Options options_;
    Stats stats_;
    std::uint32_t currentEpoch_ = 0;
    std::size_t recordsInEpoch_ = 0;
    /** (var, vertex, isWrite) of the current epoch's accesses. */
    std::vector<std::tuple<trace::SymId, int, bool>> epochAccesses_;
    /** Retained accesses per variable, epoch-ordered. */
    std::map<trace::SymId, std::deque<OnlineAccess>> onlineIndex_;
};

} // namespace dcatch::detect

#endif // DCATCH_DETECT_STREAMING_HH
