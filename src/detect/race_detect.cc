#include "detect/race_detect.hh"

#include <algorithm>
#include <map>

namespace dcatch::detect {

std::vector<Candidate>
RaceDetector::detect(const hb::HbGraph &graph) const
{
    // Group memory accesses by variable, then within a variable by
    // (site, callstack, isWrite) so the dynamic-instance bound applies
    // per static identity.
    struct Group
    {
        std::string site, callstack;
        bool isWrite = false;
        std::vector<int> instances; ///< vertex ids, seq order
    };
    std::map<std::string, std::vector<Group>> by_var;

    for (int v : graph.memAccesses()) {
        const trace::Record &rec = graph.record(v);
        bool is_write = rec.type == trace::RecordType::MemWrite;
        auto &groups = by_var[rec.id];
        Group *group = nullptr;
        for (Group &g : groups)
            if (g.site == rec.site && g.callstack == rec.callstack &&
                g.isWrite == is_write) {
                group = &g;
                break;
            }
        if (!group) {
            groups.push_back(Group{rec.site, rec.callstack, is_write, {}});
            group = &groups.back();
        }
        group->instances.push_back(v);
    }

    auto make_access = [&](int v) {
        const trace::Record &rec = graph.record(v);
        CandidateAccess acc;
        acc.vertex = v;
        acc.site = rec.site;
        acc.callstack = rec.callstack;
        acc.isWrite = rec.type == trace::RecordType::MemWrite;
        acc.thread = rec.thread;
        acc.node = rec.node;
        acc.version = rec.aux;
        return acc;
    };

    std::map<std::string, Candidate> dedup;
    int bound = options_.maxInstancesPerGroup;

    for (auto &[var, groups] : by_var) {
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            for (std::size_t gj = gi; gj < groups.size(); ++gj) {
                const Group &g1 = groups[gi];
                const Group &g2 = groups[gj];
                if (!g1.isWrite && !g2.isWrite)
                    continue; // conflicting requires >= 1 write
                int n1 = std::min<int>(bound,
                                       static_cast<int>(g1.instances.size()));
                int n2 = std::min<int>(bound,
                                       static_cast<int>(g2.instances.size()));
                for (int i = 0; i < n1; ++i) {
                    int lo = (gi == gj) ? i + 1 : 0;
                    for (int j = lo; j < n2; ++j) {
                        int u = g1.instances[static_cast<std::size_t>(i)];
                        int v = g2.instances[static_cast<std::size_t>(j)];
                        if (u == v || !graph.concurrent(u, v))
                            continue;
                        Candidate cand;
                        cand.var = var;
                        cand.a = make_access(u);
                        cand.b = make_access(v);
                        if (cand.b.site + cand.b.callstack <
                            cand.a.site + cand.a.callstack)
                            std::swap(cand.a, cand.b);
                        auto [it, inserted] =
                            dedup.emplace(cand.callstackKey(), cand);
                        if (!inserted)
                            ++it->second.dynamicPairs;
                    }
                }
            }
        }
    }

    std::vector<Candidate> out;
    out.reserve(dedup.size());
    for (auto &[key, cand] : dedup)
        out.push_back(std::move(cand));
    return out;
}

} // namespace dcatch::detect
