#include "detect/race_detect.hh"

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/task_pool.hh"
#include "detect/streaming.hh"

namespace dcatch::detect {

namespace {

// Records carry trace::SymId fields interned in the trace's shared
// symbol pool, so group and pair keys use them directly: equal ids
// iff equal strings (within one pool).  The private re-interning pass
// this detector used to run is gone.

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

/** Group identity: (var, site, callstack, isWrite), all SymIds. */
struct GroupKey
{
    trace::SymId var, site, stack;
    bool isWrite;

    bool
    operator==(const GroupKey &o) const
    {
        return var == o.var && site == o.site && stack == o.stack &&
               isWrite == o.isWrite;
    }
};

struct GroupKeyHash
{
    std::size_t
    operator()(const GroupKey &k) const
    {
        std::uint64_t h = 0;
        h = mix(h, k.var);
        h = mix(h, k.site);
        h = mix(h, k.stack);
        h = mix(h, k.isWrite ? 1 : 0);
        return static_cast<std::size_t>(h);
    }
};

/** Dedup identity: var + canonically ordered (site, stack) pair —
 *  the interned equivalent of Candidate::callstackKey(). */
struct PairKey
{
    trace::SymId var, site1, stack1, site2, stack2;

    bool
    operator==(const PairKey &o) const
    {
        return var == o.var && site1 == o.site1 && stack1 == o.stack1 &&
               site2 == o.site2 && stack2 == o.stack2;
    }
};

struct PairKeyHash
{
    std::size_t
    operator()(const PairKey &k) const
    {
        std::uint64_t h = 0;
        h = mix(h, k.var);
        h = mix(h, k.site1);
        h = mix(h, k.stack1);
        h = mix(h, k.site2);
        h = mix(h, k.stack2);
        return static_cast<std::size_t>(h);
    }
};

/** Lexicographic compare of x1+x2 vs y1+y2 without concatenating. */
bool
concatLess(std::string_view x1, std::string_view x2, std::string_view y1,
           std::string_view y2)
{
    std::size_t xi = 0, yi = 0;
    std::size_t xn = x1.size() + x2.size(), yn = y1.size() + y2.size();
    for (; xi < xn && yi < yn; ++xi, ++yi) {
        char xc = xi < x1.size() ? x1[xi] : x2[xi - x1.size()];
        char yc = yi < y1.size() ? y1[yi] : y2[yi - y1.size()];
        if (xc != yc)
            return xc < yc;
    }
    return xn < yn;
}

/** Compare two (site, callstack) composites the way callstackKey()
 *  orders them: lexicographically over site + "^" + callstack. */
bool
compositeLess(std::string_view sx, std::string_view cx,
              std::string_view sy, std::string_view cy)
{
    auto at = [](std::string_view site, std::string_view stack,
                 std::size_t k) {
        if (k < site.size())
            return site[k];
        if (k == site.size())
            return '^';
        return stack[k - site.size() - 1];
    };
    std::size_t xn = sx.size() + 1 + cx.size();
    std::size_t yn = sy.size() + 1 + cy.size();
    for (std::size_t i = 0; i < xn && i < yn; ++i) {
        char xc = at(sx, cx, i);
        char yc = at(sy, cy, i);
        if (xc != yc)
            return xc < yc;
    }
    return xn < yn;
}

} // namespace

AccessPlan
AccessPlan::build(const hb::HbGraph &graph, int maxInstancesPerGroup)
{
    // Group memory accesses by (var, site, callstack, isWrite) so the
    // dynamic-instance bound applies per static identity.  The trace's
    // interned SymIds make group lookup one hash probe instead of a
    // linear scan over string compares.  Group indices per var, groups
    // and vars both in first-seen order (the final sort fixes the
    // output order, and dedup keys never collide across vars, so any
    // var order yields the same result).
    AccessPlan plan;
    plan.bound = maxInstancesPerGroup;
    std::unordered_map<GroupKey, std::size_t, GroupKeyHash> groupIndex;

    for (int v : graph.memAccesses()) {
        const trace::Record &rec = graph.record(v);
        GroupKey key{rec.id, rec.site, rec.callstack,
                     rec.type == trace::RecordType::MemWrite};
        auto [it, inserted] = groupIndex.emplace(key, plan.groups.size());
        if (inserted) {
            plan.groups.push_back(
                Group{key.site, key.stack, key.isWrite, {}});
            auto [vit, newVar] =
                plan.byVar.emplace(key.var, std::vector<std::size_t>());
            if (newVar)
                plan.varOrder.push_back(key.var);
            vit->second.push_back(it->second);
        }
        plan.groups[it->second].instances.push_back(v);
    }

    for (trace::SymId var : plan.varOrder)
        for (std::size_t gi = 0; gi < plan.byVar[var].size(); ++gi)
            plan.units.push_back(Unit{var, gi});
    return plan;
}

std::vector<Candidate>
RaceDetector::detect(const hb::HbGraph &graph, TaskPool *pool,
                     const AccessPlan *plan, const OrderedMemo *memo) const
{
    AccessPlan local;
    if (plan == nullptr) {
        local = AccessPlan::build(graph, options_.maxInstancesPerGroup);
        plan = &local;
    }
    const std::vector<AccessPlan::Group> &groups = plan->groups;
    const auto &byVar = plan->byVar;

    const trace::SymbolPool &strings = graph.symbols();

    auto make_access = [&](int v) {
        const trace::Record &rec = graph.record(v);
        CandidateAccess acc;
        acc.vertex = v;
        acc.site = std::string(strings.view(rec.site));
        acc.callstack = std::string(strings.view(rec.callstack));
        acc.isWrite = rec.type == trace::RecordType::MemWrite;
        acc.thread = rec.thread;
        acc.node = rec.node;
        acc.version = rec.aux;
        return acc;
    };

    // Sharded pair testing.  One work unit is (var, gi): group gi of
    // the var paired against every group gj >= gi.  Units are
    // independent — all shared state (groups, interner, graph) is
    // read-only here — so they run on the TaskPool when one is
    // supplied.  Determinism: each unit writes only its own
    // index-addressed shard, and the merge below walks shards in unit
    // order, which replays the serial double loop's iteration order
    // exactly; worker count and stealing pattern are unobservable.
    struct ShardItem
    {
        PairKey key;
        Candidate cand; ///< dynamicPairs = concurrent pairs in shard
    };

    const std::vector<AccessPlan::Unit> &units = plan->units;
    int bound = plan->bound;
    std::vector<std::vector<ShardItem>> shards(units.size());
    auto run_unit = [&](std::size_t u) {
        const AccessPlan::Unit &unit = units[u];
        const std::vector<std::size_t> &varGroups =
            byVar.at(unit.var);
        std::vector<ShardItem> &shard = shards[u];
        // Dedup is local to the shard: the same PairKey can recur
        // across shards (groups differing only in isWrite), which the
        // index-ordered merge resolves globally.
        std::unordered_map<PairKey, std::size_t, PairKeyHash> dedup;
        std::size_t gi = unit.gi;
        for (std::size_t gj = gi; gj < varGroups.size(); ++gj) {
            const AccessPlan::Group &g1 = groups[varGroups[gi]];
            const AccessPlan::Group &g2 = groups[varGroups[gj]];
            if (!g1.isWrite && !g2.isWrite)
                continue; // conflicting requires >= 1 write

            // Both orderings are group-level properties: decide
            // them once instead of per instance pair.  `swapped`
            // replicates the reported a/b order (lexicographic
            // over site + callstack concatenation); the dedup key
            // canonicalises like callstackKey() (over the
            // site + "^" + callstack composite).
            bool swapped = concatLess(
                strings.view(g2.site), strings.view(g2.stack),
                strings.view(g1.site), strings.view(g1.stack));
            PairKey key{unit.var, g1.site, g1.stack, g2.site, g2.stack};
            if (compositeLess(strings.view(g2.site),
                              strings.view(g2.stack),
                              strings.view(g1.site),
                              strings.view(g1.stack)))
                key = PairKey{unit.var, g2.site, g2.stack, g1.site,
                              g1.stack};

            int n1 = std::min<int>(
                bound, static_cast<int>(g1.instances.size()));
            int n2 = std::min<int>(
                bound, static_cast<int>(g2.instances.size()));
            for (int i = 0; i < n1; ++i) {
                int lo = (gi == gj) ? i + 1 : 0;
                for (int j = lo; j < n2; ++j) {
                    int u1 = g1.instances[static_cast<std::size_t>(i)];
                    int v1 = g2.instances[static_cast<std::size_t>(j)];
                    // A memo hit is a pair the overlap pre-pass proved
                    // ordered against the pre-closure snapshot; edges
                    // only accumulate, so it stays ordered in the
                    // final graph and the full query can be skipped.
                    if (u1 == v1 ||
                        (memo != nullptr && memo->ordered(u1, v1)) ||
                        !graph.concurrent(u1, v1))
                        continue;
                    auto [it, inserted] =
                        dedup.emplace(key, shard.size());
                    if (!inserted) {
                        ++shard[it->second].cand.dynamicPairs;
                        continue;
                    }
                    ShardItem item;
                    item.key = key;
                    item.cand.var = std::string(strings.view(unit.var));
                    item.cand.a = make_access(u1);
                    item.cand.b = make_access(v1);
                    if (swapped)
                        std::swap(item.cand.a, item.cand.b);
                    shard.push_back(std::move(item));
                }
            }
        }
    };
    if (pool != nullptr && pool->jobs() > 1 && units.size() > 1) {
        pool->parallelFor(units.size(), run_unit);
    } else {
        for (std::size_t u = 0; u < units.size(); ++u)
            run_unit(u);
    }

    // Index-ordered merge: first shard (in unit order) to carry a key
    // owns the reported candidate, later shards only add their
    // dynamic-pair counts — exactly what the serial loop produced.
    std::vector<Candidate> out;
    std::unordered_map<PairKey, std::size_t, PairKeyHash> dedup;
    for (std::vector<ShardItem> &shard : shards) {
        for (ShardItem &item : shard) {
            auto [it, inserted] = dedup.emplace(item.key, out.size());
            if (inserted)
                out.push_back(std::move(item.cand));
            else
                out[it->second].dynamicPairs += item.cand.dynamicPairs;
        }
    }

    // The dedup map used to be a std::map over callstackKey(); keep
    // the reported order identical.
    std::vector<std::string> keys;
    keys.reserve(out.size());
    for (const Candidate &cand : out)
        keys.push_back(cand.callstackKey());
    std::vector<std::size_t> order(out.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return keys[x] < keys[y];
    });
    std::vector<Candidate> sorted;
    sorted.reserve(out.size());
    for (std::size_t idx : order)
        sorted.push_back(std::move(out[idx]));
    return sorted;
}

} // namespace dcatch::detect
