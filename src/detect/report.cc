#include "detect/report.hh"

#include <set>

namespace dcatch::detect {

std::string
sitePair(const std::string &x, const std::string &y)
{
    return x <= y ? x + "||" + y : y + "||" + x;
}

std::string
Candidate::staticKey() const
{
    return var + "@" + sitePair(a.site, b.site);
}

std::string
Candidate::callstackKey() const
{
    return var + "@" +
           sitePair(a.site + "^" + a.callstack,
                    b.site + "^" + b.callstack);
}

std::string
Candidate::sitePairKey() const
{
    return sitePair(a.site, b.site);
}

ReportCounts
countReports(const std::vector<Candidate> &candidates)
{
    std::set<std::string> statics, stacks;
    ReportCounts counts;
    for (const Candidate &cand : candidates) {
        statics.insert(cand.staticKey());
        stacks.insert(cand.callstackKey());
        counts.dynamicPairs += cand.dynamicPairs;
    }
    counts.staticPairs = static_cast<int>(statics.size());
    counts.callstackPairs = static_cast<int>(stacks.size());
    return counts;
}

} // namespace dcatch::detect
