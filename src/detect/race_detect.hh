/**
 * @file
 * DCbug candidate detection (paper section 3.2.2).
 *
 * A DCbug candidate is a pair of memory accesses (s, t) touching the
 * same variable, at least one a write, with no happens-before path in
 * either direction.  Candidates are deduplicated two ways, matching
 * the paper's reporting: by unique static-instruction pair (site
 * pair) and by unique callstack pair.
 */

#ifndef DCATCH_DETECT_RACE_DETECT_HH
#define DCATCH_DETECT_RACE_DETECT_HH

#include <vector>

#include "detect/report.hh"
#include "hb/graph.hh"

namespace dcatch {
class TaskPool;
}

namespace dcatch::detect {

/** Race detector over a closed HB graph. */
class RaceDetector
{
  public:
    struct Options
    {
        /**
         * Bound on dynamic instances tested per (site, callstack)
         * group of one variable; keeps loop-heavy traces polynomial
         * without losing static/callstack pairs.
         */
        int maxInstancesPerGroup = 4;
    };

    RaceDetector() : RaceDetector(Options()) {}
    explicit RaceDetector(Options options) : options_(options) {}

    /**
     * Report all candidates, deduplicated by callstack pair (the
     * finer granularity; static-pair counts derive from the result).
     *
     * When @p pool is non-null with more than one worker, pair
     * testing is sharded over (var, group) partitions and merged in
     * partition-index order — the result is byte-identical to the
     * serial path for any worker count (docs/parallelism.md).
     */
    std::vector<Candidate> detect(const hb::HbGraph &graph,
                                  TaskPool *pool = nullptr) const;

  private:
    Options options_;
};

} // namespace dcatch::detect

#endif // DCATCH_DETECT_RACE_DETECT_HH
