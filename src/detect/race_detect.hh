/**
 * @file
 * DCbug candidate detection (paper section 3.2.2).
 *
 * A DCbug candidate is a pair of memory accesses (s, t) touching the
 * same variable, at least one a write, with no happens-before path in
 * either direction.  Candidates are deduplicated two ways, matching
 * the paper's reporting: by unique static-instruction pair (site
 * pair) and by unique callstack pair.
 */

#ifndef DCATCH_DETECT_RACE_DETECT_HH
#define DCATCH_DETECT_RACE_DETECT_HH

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "detect/report.hh"
#include "hb/graph.hh"

namespace dcatch {
class TaskPool;
}

namespace dcatch::detect {

class OrderedMemo;

/**
 * Precomputed grouping of a graph's memory accesses: the (var, site,
 * callstack, isWrite) groups, their per-variable partitions, and the
 * (var, group) work units the sharded pair test iterates.  The plan
 * depends only on the records (never on closure results), so it can
 * be built once — even while HB closure is still running — and shared
 * by the overlap pre-pass, the final detect, and any re-detect after
 * loop-aware pull edges.
 */
struct AccessPlan
{
    struct Group
    {
        trace::SymId site, stack;
        bool isWrite = false;
        std::vector<int> instances; ///< vertex ids, seq order
    };
    struct Unit
    {
        trace::SymId var;
        std::size_t gi;
    };

    std::vector<Group> groups;
    /** Vars in first-seen order; groups per var in first-seen order. */
    std::vector<trace::SymId> varOrder;
    std::unordered_map<trace::SymId, std::vector<std::size_t>> byVar;
    std::vector<Unit> units;
    int bound = 4; ///< maxInstancesPerGroup the plan was built with

    /**
     * Build from @p graph's records and memory-access index.  Safe to
     * call mid-construction from a ClosureOverlap callback: it reads
     * only state that is final before closure starts.
     */
    static AccessPlan build(const hb::HbGraph &graph,
                            int maxInstancesPerGroup = 4);
};

/** Race detector over a closed HB graph. */
class RaceDetector
{
  public:
    struct Options
    {
        /**
         * Bound on dynamic instances tested per (site, callstack)
         * group of one variable; keeps loop-heavy traces polynomial
         * without losing static/callstack pairs.
         */
        int maxInstancesPerGroup = 4;
    };

    RaceDetector() : RaceDetector(Options()) {}
    explicit RaceDetector(Options options) : options_(options) {}

    /**
     * Report all candidates, deduplicated by callstack pair (the
     * finer granularity; static-pair counts derive from the result).
     *
     * When @p pool is non-null with more than one worker, pair
     * testing is sharded over (var, group) partitions and merged in
     * partition-index order — the result is byte-identical to the
     * serial path for any worker count (docs/parallelism.md).
     *
     * @p plan, when non-null, supplies the prebuilt access grouping
     * (it must have been built over the same graph with the same
     * instance bound); otherwise the grouping is built here.  @p memo,
     * when non-null, short-circuits pairs already proven ordered by
     * the closure-overlap pre-pass — ordering only ever grows during
     * closure, so a memo hit is final and the candidate set is
     * byte-identical with or without it (docs/hb_auto_engine.md,
     * "Overlapped detection").
     */
    std::vector<Candidate> detect(const hb::HbGraph &graph,
                                  TaskPool *pool = nullptr,
                                  const AccessPlan *plan = nullptr,
                                  const OrderedMemo *memo = nullptr) const;

  private:
    Options options_;
};

} // namespace dcatch::detect

#endif // DCATCH_DETECT_RACE_DETECT_HH
