/**
 * @file
 * DCbug candidate report types (no dependency on the HB graph), shared
 * between the detector, the pruner, the pull analysis, and the
 * trigger module.
 */

#ifndef DCATCH_DETECT_REPORT_HH
#define DCATCH_DETECT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dcatch::detect {

/** One side of a candidate pair (a representative dynamic instance). */
struct CandidateAccess
{
    int vertex = -1;        ///< vertex in the pass-1 HB graph
    std::string site;       ///< static site id
    std::string callstack;  ///< callstack at the access
    bool isWrite = false;
    int thread = -1;
    int node = -1;
    std::int64_t version = 0; ///< value version involved
};

/** A DCbug candidate: two concurrent conflicting accesses. */
struct Candidate
{
    std::string var;   ///< variable id both accesses touch
    CandidateAccess a; ///< canonical order (see RaceDetector)
    CandidateAccess b;
    int dynamicPairs = 1; ///< concurrent dynamic pairs collapsed here

    /** Unordered static-instruction pair key. */
    std::string staticKey() const;

    /** Unordered callstack pair key. */
    std::string callstackKey() const;

    /** Unordered site-pair key without the variable (used to match
     *  known root-cause bugs declared by benchmarks). */
    std::string sitePairKey() const;
};

/** Count summaries used throughout the evaluation benches. */
struct ReportCounts
{
    int staticPairs = 0;
    int callstackPairs = 0;
    int dynamicPairs = 0;
};

/** Compute counts over a candidate list. */
ReportCounts countReports(const std::vector<Candidate> &candidates);

/** Canonical unordered pair key of two site ids. */
std::string sitePair(const std::string &x, const std::string &y);

} // namespace dcatch::detect

#endif // DCATCH_DETECT_REPORT_HH
