/**
 * @file
 * Trace record vocabulary.
 *
 * Each record corresponds to one operation from Table 2 of the DCatch
 * paper (plus lock and loop records used by the triggering module and
 * the pull-based synchronization analysis).  A record carries:
 *
 *  - the operation type,
 *  - the static site id (bytecode-instruction identity in the paper;
 *    a symbolic string constant here),
 *  - the callstack at the operation,
 *  - a grouping id that lets the trace analyser pair related records
 *    (memory-location id, thread id, event instance id, RPC tag,
 *    message tag, coordination-znode path, lock id, loop instance id),
 *  - node / thread / global-sequence coordinates.
 */

#ifndef DCATCH_TRACE_RECORD_HH
#define DCATCH_TRACE_RECORD_HH

#include <cstdint>
#include <string>

namespace dcatch::trace {

/** Operation type of a trace record. */
enum class RecordType {
    MemRead,        ///< read of a traced shared variable
    MemWrite,       ///< write of a traced shared variable
    ThreadCreate,   ///< Create(t) in the parent thread
    ThreadBegin,    ///< Begin(t) in the child thread
    ThreadEnd,      ///< End(t) in the child thread
    ThreadJoin,     ///< Join(t) in the joining thread
    EventCreate,    ///< Create(e): enqueue of an event
    EventBegin,     ///< Begin(e): handler starts
    EventEnd,       ///< End(e): handler finishes
    RpcCreate,      ///< Create(r, n1): RPC call issued
    RpcBegin,       ///< Begin(r, n2): RPC body starts
    RpcEnd,         ///< End(r, n2): RPC body finishes
    RpcJoin,        ///< Join(r, n1): RPC call returns
    MsgSend,        ///< Send(m, n1): socket message sent
    MsgRecv,        ///< Recv(m, n2): socket message delivered
    CoordUpdate,    ///< Update(s, n1): znode create/delete/setData
    CoordPushed,    ///< Pushed(s, n2): watcher notification delivered
    LockAcquire,    ///< lock acquired (for trigger placement only)
    LockRelease,    ///< lock released (for trigger placement only)
    LoopIter,       ///< one iteration of an instrumented retry loop
    LoopExit,       ///< exit of an instrumented retry loop
};

/** Human-readable name of a record type. */
const char *recordTypeName(RecordType type);

/**
 * Coarse category used by the Table 7 record-breakdown benchmark.
 */
enum class RecordCategory { Mem, RpcSocket, Event, Thread, Coord, Lock, Loop };

/** Map a record type to its Table 7 category. */
RecordCategory recordCategory(RecordType type);

/** Name of a record category. */
const char *recordCategoryName(RecordCategory cat);

/** One traced operation. */
struct Record
{
    RecordType type = RecordType::MemRead;
    int node = -1;          ///< node index the operation executed on
    int thread = -1;        ///< global thread index
    std::uint64_t seq = 0;  ///< global sequence number (total order)
    std::string site;       ///< static site id (may be empty for HB ops)
    std::string callstack;  ///< joined frame stack at the operation
    std::string id;         ///< grouping id (see file comment)
    std::int64_t aux = 0;   ///< value version (mem ops), iteration count
                            ///< (loop ops), or unused

    /** True for MemRead / MemWrite. */
    bool
    isMemoryAccess() const
    {
        return type == RecordType::MemRead || type == RecordType::MemWrite;
    }

    /** Serialize to one trace-file line. */
    std::string toLine() const;

    /**
     * Parse a line produced by toLine().
     * @return false when the line is malformed (rec left unchanged)
     */
    static bool fromLine(const std::string &line, Record &rec);
};

/** Parse a type name back to the enum. @return false when unknown. */
bool parseRecordType(const std::string &name, RecordType &type);

} // namespace dcatch::trace

#endif // DCATCH_TRACE_RECORD_HH
