/**
 * @file
 * Trace record vocabulary.
 *
 * Each record corresponds to one operation from Table 2 of the DCatch
 * paper (plus lock and loop records used by the triggering module and
 * the pull-based synchronization analysis).  A record carries:
 *
 *  - the operation type,
 *  - the static site id (bytecode-instruction identity in the paper;
 *    a symbolic string constant here),
 *  - the callstack at the operation,
 *  - a grouping id that lets the trace analyser pair related records
 *    (memory-location id, thread id, event instance id, RPC tag,
 *    message tag, coordination-znode path, lock id, loop instance id),
 *  - node / thread / global-sequence coordinates.
 *
 * The string-valued fields (site, callstack, id) are SymIds into the
 * owning TraceStore's SymbolPool: a Record is a trivially copyable
 * 48-byte row, and serialization resolves symbols lazily so the
 * on-disk line format is unchanged from the string-per-record
 * representation.
 */

#ifndef DCATCH_TRACE_RECORD_HH
#define DCATCH_TRACE_RECORD_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "trace/symbol_pool.hh"

namespace dcatch::trace {

/** Operation type of a trace record. */
enum class RecordType {
    MemRead,        ///< read of a traced shared variable
    MemWrite,       ///< write of a traced shared variable
    ThreadCreate,   ///< Create(t) in the parent thread
    ThreadBegin,    ///< Begin(t) in the child thread
    ThreadEnd,      ///< End(t) in the child thread
    ThreadJoin,     ///< Join(t) in the joining thread
    EventCreate,    ///< Create(e): enqueue of an event
    EventBegin,     ///< Begin(e): handler starts
    EventEnd,       ///< End(e): handler finishes
    RpcCreate,      ///< Create(r, n1): RPC call issued
    RpcBegin,       ///< Begin(r, n2): RPC body starts
    RpcEnd,         ///< End(r, n2): RPC body finishes
    RpcJoin,        ///< Join(r, n1): RPC call returns
    MsgSend,        ///< Send(m, n1): socket message sent
    MsgRecv,        ///< Recv(m, n2): socket message delivered
    CoordUpdate,    ///< Update(s, n1): znode create/delete/setData
    CoordPushed,    ///< Pushed(s, n2): watcher notification delivered
    LockAcquire,    ///< lock acquired (for trigger placement only)
    LockRelease,    ///< lock released (for trigger placement only)
    LoopIter,       ///< one iteration of an instrumented retry loop
    LoopExit,       ///< exit of an instrumented retry loop
};

/** Human-readable name of a record type. */
const char *recordTypeName(RecordType type);

/**
 * Coarse category used by the Table 7 record-breakdown benchmark.
 */
enum class RecordCategory { Mem, RpcSocket, Event, Thread, Coord, Lock, Loop };

/** Map a record type to its Table 7 category. */
RecordCategory recordCategory(RecordType type);

/** Name of a record category. */
const char *recordCategoryName(RecordCategory cat);

/** One traced operation: a POD row against a SymbolPool. */
struct Record
{
    RecordType type = RecordType::MemRead;
    int node = -1;          ///< node index the operation executed on
    int thread = -1;        ///< global thread index
    std::uint64_t seq = 0;  ///< global sequence number (total order)
    SymId site = 0;         ///< static site id (0 = empty symbol)
    SymId callstack = 0;    ///< joined frame stack at the operation
    SymId id = 0;           ///< grouping id (see file comment)
    std::int64_t aux = 0;   ///< value version (mem ops), iteration count
                            ///< (loop ops), or unused

    /** True for MemRead / MemWrite. */
    bool
    isMemoryAccess() const
    {
        return type == RecordType::MemRead || type == RecordType::MemWrite;
    }

    /** Serialize to one trace-file line, resolving symbols. */
    std::string toLine(const SymbolPool &pool) const;

    /** Append the toLine() text to @p out (no trailing newline). */
    void appendLine(const SymbolPool &pool, std::string &out) const;

    /** Exact toLine().size(), computed without formatting. */
    std::size_t lineLength(const SymbolPool &pool) const;

    /**
     * Parse a line produced by toLine(), interning symbol text into
     * @p pool.  The grammar is strict: exactly the eight fields of
     * toLine() separated by single spaces, fully numeric seq / node /
     * thread / aux, and a known type name.  The trailing cs= field
     * absorbs any remaining spaces (callstacks never contain spaces
     * when written, but a truncated or shifted line must not be
     * silently reinterpreted).
     * @param error when non-null, receives a description of the first
     *        defect on failure
     * @return false when the line is malformed (rec left unchanged)
     */
    static bool fromLine(const std::string &line, SymbolPool &pool,
                         Record &rec, std::string *error = nullptr);

    /**
     * Zero-copy variant of fromLine: parse the numeric fields into
     * @p rec and return the three symbol texts as views into @p line
     * without interning them (rec.site / id / callstack are left 0
     * for the caller to fill).  The views alias @p line and are valid
     * only while it is.  The serve ingest fast path interns them
     * through a per-frame cache; fromLine delegates here and interns
     * directly.  Grammar and error messages are identical.
     */
    static bool scanLine(std::string_view line, Record &rec,
                         std::string_view &site, std::string_view &id,
                         std::string_view &callstack,
                         std::string *error = nullptr);
};

static_assert(std::is_trivially_copyable_v<Record>,
              "Record must stay a POD row (no owning strings)");

/** Parse a type name back to the enum. @return false when unknown. */
bool parseRecordType(std::string_view name, RecordType &type);

} // namespace dcatch::trace

#endif // DCATCH_TRACE_RECORD_HH
