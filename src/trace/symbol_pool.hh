/**
 * @file
 * Append-only string interner backing the columnar trace substrate.
 *
 * Every distinct site / callstack / grouping-id string is stored once
 * and referenced by a 32-bit SymId everywhere else: records move
 * 4-byte handles instead of heap-allocated strings, and equality of
 * two symbols from the same pool is one integer compare.
 *
 * Properties the rest of the system relies on:
 *
 *  - ids are dense and assigned in first-intern order, so a pool fed
 *    the same strings in the same order assigns the same ids
 *    (determinism across runs and replay);
 *  - the empty string is always id 0, which makes a zero-initialized
 *    Record field a valid "no symbol text" value;
 *  - view(id) returns a std::string_view that stays valid for the
 *    pool's lifetime: character data lives in chunked arenas that are
 *    never reallocated, only extended;
 *  - hashing is FNV-1a over the bytes (common/util.hh fnv1a), so the
 *    layout is reproducible and independent of libstdc++'s
 *    std::hash.
 *
 * The pool is single-writer: interning is not thread-safe.  view()
 * and size() are safe concurrently with a live interner: entries live
 * in a StableVector whose release-published size makes every id below
 * an observed size() fully readable (the daemon's sessions intern
 * while the HB engine resolves).  find() probes the open-addressing
 * table, which the writer rehashes in place — it is safe only on the
 * writer thread or after a happens-before edge such as a TaskPool
 * fork.
 */

#ifndef DCATCH_TRACE_SYMBOL_POOL_HH
#define DCATCH_TRACE_SYMBOL_POOL_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/stable_vector.hh"

namespace dcatch::trace {

/** Handle to an interned string (dense, first-intern order). */
using SymId = std::uint32_t;

/** Sentinel returned by SymbolPool::find for absent strings. */
inline constexpr SymId kNoSym = 0xffffffffu;

/** Append-only string interner with stable views. */
class SymbolPool
{
  public:
    /** Constructs the pool with "" pre-interned as id 0. */
    SymbolPool();

    SymbolPool(const SymbolPool &) = delete;
    SymbolPool &operator=(const SymbolPool &) = delete;

    /** Intern @p text, returning its id (existing or fresh). */
    SymId intern(std::string_view text);

    /** Id of @p text if already interned, kNoSym otherwise.
     *  Writer-thread / post-fork only (probes the live hash table). */
    SymId find(std::string_view text) const;

    /** Text of an interned symbol; valid for the pool's lifetime.
     *  Live-reader safe for ids below an observed size(). */
    std::string_view
    view(SymId id) const
    {
        const Entry &e = entries_[id];
        return {e.data, e.size};
    }

    /** Number of interned symbols (>= 1: the empty string).
     *  Live-reader safe (acquire). */
    std::size_t size() const { return entries_.size(); }

    /** Bytes held: arenas + hash table + entry metadata. */
    std::size_t bytes() const;

  private:
    struct Entry
    {
        const char *data;
        std::uint32_t size;
        std::uint64_t hash;
    };

    /** Copy @p text into the arena; the result pointer is stable. */
    const char *store(std::string_view text);

    /** Grow and rehash the open-addressing table. */
    void rehash(std::size_t buckets);

    static constexpr std::size_t kChunkBytes = 64 * 1024;

    /** Stable addresses + release-published size: view()/size() stay
     *  valid while the writer interns (single-writer contract). */
    StableVector<Entry> entries_;
    /** Open addressing, power-of-two size; kNoSym marks empty. */
    std::vector<SymId> table_;
    std::vector<std::unique_ptr<char[]>> chunks_;
    std::size_t chunkUsed_ = kChunkBytes; ///< force initial allocation
    std::size_t chunkCap_ = kChunkBytes;  ///< capacity of last chunk
    std::size_t arenaBytes_ = 0;
};

} // namespace dcatch::trace

#endif // DCATCH_TRACE_SYMBOL_POOL_HH
