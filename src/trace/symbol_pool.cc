#include "trace/symbol_pool.hh"

#include <cassert>
#include <cstring>

#include "common/util.hh"

namespace dcatch::trace {

SymbolPool::SymbolPool()
{
    rehash(256);
    intern({});
}

const char *
SymbolPool::store(std::string_view text)
{
    if (text.empty())
        return "";
    if (chunkUsed_ + text.size() > chunkCap_) {
        // Oversized strings get a dedicated chunk so regular chunks
        // stay densely packed.
        std::size_t cap = text.size() > kChunkBytes ? text.size()
                                                    : kChunkBytes;
        chunks_.push_back(std::make_unique<char[]>(cap));
        chunkUsed_ = 0;
        chunkCap_ = cap;
        arenaBytes_ += cap;
    }
    char *dst = chunks_.back().get() + chunkUsed_;
    std::memcpy(dst, text.data(), text.size());
    chunkUsed_ += text.size();
    return dst;
}

void
SymbolPool::rehash(std::size_t buckets)
{
    assert((buckets & (buckets - 1)) == 0 && "bucket count power of two");
    table_.assign(buckets, kNoSym);
    std::size_t mask = buckets - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        std::size_t slot = entries_[i].hash & mask;
        while (table_[slot] != kNoSym)
            slot = (slot + 1) & mask;
        table_[slot] = static_cast<SymId>(i);
    }
}

SymId
SymbolPool::intern(std::string_view text)
{
    std::uint64_t hash = fnv1a(text);
    std::size_t mask = table_.size() - 1;
    std::size_t slot = hash & mask;
    while (table_[slot] != kNoSym) {
        const Entry &e = entries_[table_[slot]];
        if (e.hash == hash && std::string_view{e.data, e.size} == text)
            return table_[slot];
        slot = (slot + 1) & mask;
    }

    SymId id = static_cast<SymId>(entries_.size());
    entries_.push_back(Entry{store(text),
                             static_cast<std::uint32_t>(text.size()),
                             hash});
    table_[slot] = id;
    // Keep the load factor under 0.7 so probe chains stay short.
    if (entries_.size() * 10 > table_.size() * 7)
        rehash(table_.size() * 2);
    return id;
}

SymId
SymbolPool::find(std::string_view text) const
{
    std::uint64_t hash = fnv1a(text);
    std::size_t mask = table_.size() - 1;
    std::size_t slot = hash & mask;
    while (table_[slot] != kNoSym) {
        const Entry &e = entries_[table_[slot]];
        if (e.hash == hash && std::string_view{e.data, e.size} == text)
            return table_[slot];
        slot = (slot + 1) & mask;
    }
    return kNoSym;
}

std::size_t
SymbolPool::bytes() const
{
    return arenaBytes_ + table_.capacity() * sizeof(SymId) +
           entries_.capacityBytes() +
           chunks_.capacity() * sizeof(chunks_[0]);
}

} // namespace dcatch::trace
