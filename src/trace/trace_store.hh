/**
 * @file
 * In-memory trace storage.
 *
 * DCatch produces one trace file per thread of the target system
 * (paper section 3.1).  The store keeps one *columnar* log per global
 * thread index — structure-of-arrays: type / node / seq / aux packed
 * PODs plus SymId columns resolved against a shared SymbolPool — so a
 * record costs ~48 bytes plus one copy of each distinct string,
 * instead of three heap-allocated strings per record.
 *
 * Access is through lightweight views:
 *
 *  - RecordView: one row (thread, index) + the pool; resolves symbol
 *    text lazily.  Valid as long as the store it came from is neither
 *    destroyed nor moved; appends do NOT invalidate views.
 *  - ThreadLogView: one thread's rows in program order.
 *  - MergedView: all rows merged by global sequence number — the
 *    zero-copy replacement for the old allRecords() copy-and-sort
 *    (per-thread logs are seq-ascending because the global counter is
 *    monotonic, so a k-way min-merge suffices).
 *
 * The store also hands out globally unique sequence numbers, knows
 * how to serialize itself to per-thread files (byte-identical to the
 * pre-interning string representation), computes the record breakdown
 * of Table 7, and reports its serialized size for Table 6/8 (cached
 * incrementally at append time).
 *
 * Concurrency contract (single-writer / concurrent-reader): exactly
 * one thread appends; any number of threads may concurrently iterate
 * ThreadLogView / MergedView and resolve symbols.  Columns live in
 * StableVectors (stable addresses, release-published row counts), so
 * a reader that observes N rows may freely read rows [0, N); merged
 * iterators snapshot every thread's published row count at begin()
 * and iterate exactly that prefix.  Queue/thread *metadata* maps are
 * NOT part of the live contract — noteQueue/noteThread and queues()/
 * threads() must stay on the writer thread or behind a fork edge.
 * The daemon's per-run sessions lean on this continuously; see
 * tests/trace/trace_live_append_test.cc.
 */

#ifndef DCATCH_TRACE_TRACE_STORE_HH
#define DCATCH_TRACE_TRACE_STORE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stable_vector.hh"
#include "trace/record.hh"
#include "trace/symbol_pool.hh"

namespace dcatch::trace {

/** Static metadata about one event queue (for Rule-Eserial). */
struct QueueMeta
{
    std::string queueId;        ///< unique queue identity
    int node = -1;              ///< owning node
    bool singleConsumer = true; ///< exactly one handling thread?
};

/** Static metadata about one traced thread. */
struct ThreadMeta
{
    int thread = -1;        ///< global thread index
    int node = -1;          ///< owning node
    std::string name;       ///< diagnostic name
    bool handlerThread = false; ///< event/RPC/message worker thread?
};

/** Corrupt trace file detected by TraceStore::loadFromDirectory. */
class TraceParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Per-run trace: per-thread columnar logs plus static metadata. */
class TraceStore
{
    struct Columns; // structure-of-arrays per-thread log, defined below

  public:
    /** Fresh store with its own symbol pool. */
    TraceStore() : pool_(std::make_shared<SymbolPool>()) {}

    /** Store sharing an existing pool (trace slices, store copies
     *  that must keep resolving the same SymIds). */
    explicit TraceStore(std::shared_ptr<SymbolPool> pool)
        : pool_(std::move(pool))
    {
    }

    // Copies/moves share the pool and require both stores quiescent
    // (they exist for pipeline results and trace slices, not for
    // concurrent use); spelled out because the counters are atomics.
    TraceStore(const TraceStore &other) { *this = other; }
    TraceStore &
    operator=(const TraceStore &other)
    {
        if (this == &other)
            return *this;
        pool_ = other.pool_;
        seq_ = other.seq_;
        logs_ = other.logs_;
        total_.store(other.total_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        serializedBytes_.store(
            other.serializedBytes_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        queues_ = other.queues_;
        threads_ = other.threads_;
        return *this;
    }
    TraceStore(TraceStore &&other) noexcept { *this = std::move(other); }
    TraceStore &
    operator=(TraceStore &&other) noexcept
    {
        if (this == &other)
            return *this;
        pool_ = std::move(other.pool_);
        seq_ = other.seq_;
        logs_ = std::move(other.logs_);
        total_.store(other.total_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        serializedBytes_.store(
            other.serializedBytes_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        queues_ = std::move(other.queues_);
        threads_ = std::move(other.threads_);
        return *this;
    }

    /** The symbol pool all SymId fields resolve against. */
    SymbolPool &symbols() { return *pool_; }
    const SymbolPool &symbols() const { return *pool_; }

    /** Shared handle to the pool, for stores that must alias it. */
    const std::shared_ptr<SymbolPool> &sharedSymbols() const
    {
        return pool_;
    }

    /** Reserve the next global sequence number. */
    std::uint64_t nextSeq() { return seq_++; }

    /** Append a record to its thread's log.  Per-thread sequence
     *  numbers must be ascending (they are, for records stamped by
     *  nextSeq() in append order). */
    void append(const Record &rec);

    /** Register queue metadata (idempotent per queueId). */
    void noteQueue(const QueueMeta &meta);

    /** Register thread metadata. */
    void noteThread(const ThreadMeta &meta);

    /**
     * One row of the store.  Cheap to copy; symbol text resolves
     * against the store's pool on demand.  Valid until the store is
     * destroyed or moved (appends do not invalidate).
     */
    class RecordView
    {
      public:
        RecordView() = default;

        RecordType type() const { return cols().type[row_]; }
        int node() const { return cols().node[row_]; }
        int thread() const { return thread_; }
        std::uint64_t seq() const { return cols().seq[row_]; }
        std::int64_t aux() const { return cols().aux[row_]; }

        SymId siteSym() const { return cols().site[row_]; }
        SymId callstackSym() const { return cols().callstack[row_]; }
        SymId idSym() const { return cols().id[row_]; }

        std::string_view site() const { return pool().view(siteSym()); }
        std::string_view callstack() const
        {
            return pool().view(callstackSym());
        }
        std::string_view id() const { return pool().view(idSym()); }

        bool
        isMemoryAccess() const
        {
            RecordType t = type();
            return t == RecordType::MemRead || t == RecordType::MemWrite;
        }

        /** Materialize the POD row. */
        Record record() const;

        /** Serialized trace-file line (resolves symbols). */
        std::string toLine() const { return record().toLine(pool()); }

      private:
        friend class TraceStore;
        RecordView(const TraceStore *store, int thread, std::size_t row)
            : store_(store), thread_(thread), row_(row)
        {
        }

        const Columns &cols() const;
        const SymbolPool &pool() const { return *store_->pool_; }

        const TraceStore *store_ = nullptr;
        int thread_ = -1;
        std::size_t row_ = 0;
    };

    /** One thread's rows in program (= seq) order. */
    class ThreadLogView
    {
      public:
        std::size_t size() const;
        bool empty() const { return size() == 0; }

        RecordView
        operator[](std::size_t i) const
        {
            return RecordView(store_, thread_, i);
        }

        class iterator
        {
          public:
            using iterator_category = std::input_iterator_tag;
            using value_type = RecordView;
            using difference_type = std::ptrdiff_t;
            using pointer = const RecordView *;
            using reference = RecordView;

            RecordView
            operator*() const
            {
                return RecordView(store_, thread_, i_);
            }
            iterator &
            operator++()
            {
                ++i_;
                return *this;
            }
            bool
            operator!=(const iterator &o) const
            {
                return i_ != o.i_;
            }
            bool
            operator==(const iterator &o) const
            {
                return i_ == o.i_;
            }

          private:
            friend class ThreadLogView;
            iterator(const TraceStore *store, int thread, std::size_t i)
                : store_(store), thread_(thread), i_(i)
            {
            }
            const TraceStore *store_;
            int thread_;
            std::size_t i_;
        };

        iterator begin() const { return {store_, thread_, 0}; }
        iterator end() const { return {store_, thread_, size()}; }

      private:
        friend class TraceStore;
        ThreadLogView(const TraceStore *store, int thread)
            : store_(store), thread_(thread)
        {
        }

        const TraceStore *store_;
        int thread_;
    };

    /** All rows of one thread (empty view for unknown threads). */
    ThreadLogView threadLog(int thread) const
    {
        return ThreadLogView(this, thread);
    }

    /** Number of thread logs. */
    int threadCount() const { return static_cast<int>(logs_.size()); }

    /**
     * All rows merged by global sequence number, lazily: the iterator
     * keeps one cursor per thread and yields the minimum-seq row.
     * Replaces the copying allRecords() API.
     */
    class MergedView
    {
      public:
        class iterator
        {
          public:
            using iterator_category = std::input_iterator_tag;
            using value_type = RecordView;
            using difference_type = std::ptrdiff_t;
            using pointer = const RecordView *;
            using reference = RecordView;

            RecordView
            operator*() const
            {
                return RecordView(store_, current_,
                                  cursor_[static_cast<std::size_t>(
                                      current_)]);
            }
            iterator &operator++();
            bool
            operator!=(const iterator &o) const
            {
                return remaining_ != o.remaining_;
            }
            bool
            operator==(const iterator &o) const
            {
                return remaining_ == o.remaining_;
            }

          private:
            friend class MergedView;
            iterator() = default;
            explicit iterator(const TraceStore *store);
            void findMin();

            const TraceStore *store_ = nullptr;
            std::vector<std::size_t> cursor_;
            /** Per-thread row counts snapshotted at construction, so
             *  a live writer appending mid-iteration cannot tear the
             *  merge: exactly this prefix is yielded. */
            std::vector<std::size_t> limit_;
            int current_ = -1;
            std::size_t remaining_ = 0;
        };

        iterator begin() const { return iterator(store_); }
        iterator end() const { return iterator(); }
        /** Published total; under a live writer this may exceed what
         *  an already-constructed iterator will yield. */
        std::size_t size() const { return store_->totalRecords(); }

      private:
        friend class TraceStore;
        explicit MergedView(const TraceStore *store) : store_(store) {}
        const TraceStore *store_;
    };

    /** The merged-by-seq view over all threads. */
    MergedView merged() const { return MergedView(this); }

    /**
     * Materialize the merged view into a vector of POD rows (no
     * symbol text is copied).  Only for consumers that need random
     * access over the global order, e.g. windowed chunking; iterate
     * merged() everywhere else.
     */
    std::vector<Record> mergedRecords() const;

    /** Total number of records (live-reader safe). */
    std::size_t
    totalRecords() const
    {
        return total_.load(std::memory_order_acquire);
    }

    /** Record counts keyed by category (Table 7). */
    std::map<RecordCategory, std::size_t> countsByCategory() const;

    /** Serialized size in bytes (what the trace files would occupy).
     *  Cached incrementally at append time. */
    std::size_t serializedBytes() const;

    /** Resident bytes of the in-memory representation: columns plus
     *  the symbol pool (excludes queue/thread metadata). */
    std::size_t memoryBytes() const;

    /**
     * FNV-1a digest over every record's serialized form in global
     * sequence order: two stores have equal digests iff their
     * serialized traces are byte-identical.  The record/replay
     * subsystem stores this in schedule-log headers and repro bundles
     * to certify that a replayed run reproduced the recorded trace.
     */
    std::uint64_t contentDigest() const;

    /** Write one trace file per thread into @p directory. */
    void writeToDirectory(const std::string &directory) const;

    /**
     * Load the per-thread trace files written by writeToDirectory()
     * back into this store (records only; queue/thread metadata is
     * not serialized and must be re-registered by the caller).
     * @throws TraceParseError naming the file, line number, and
     *         defect when a line is malformed — corrupt traces are
     *         reported, never silently skipped
     * @return number of records loaded
     */
    std::size_t loadFromDirectory(const std::string &directory);

    /** Queue metadata, keyed by queueId (string_view-searchable). */
    const std::map<std::string, QueueMeta, std::less<>> &queues() const
    {
        return queues_;
    }

    /** Thread metadata, keyed by global thread index. */
    const std::map<int, ThreadMeta> &threads() const { return threads_; }

  private:
    /** Structure-of-arrays columns of one thread's log.  A row is
     *  published by writing every column and then release-storing
     *  rows_; size() acquires it, so readers never see a torn row. */
    struct Columns
    {
        StableVector<RecordType> type;
        StableVector<std::int32_t> node;
        StableVector<std::uint64_t> seq;
        StableVector<SymId> site;
        StableVector<SymId> callstack;
        StableVector<SymId> id;
        StableVector<std::int64_t> aux;

        Columns() = default;
        Columns(const Columns &o) { *this = o; }
        Columns &
        operator=(const Columns &o)
        {
            if (this == &o)
                return *this;
            type = o.type;
            node = o.node;
            seq = o.seq;
            site = o.site;
            callstack = o.callstack;
            id = o.id;
            aux = o.aux;
            rows_.store(o.size(), std::memory_order_relaxed);
            return *this;
        }
        Columns(Columns &&o) noexcept { *this = std::move(o); }
        Columns &
        operator=(Columns &&o) noexcept
        {
            if (this == &o)
                return *this;
            type = std::move(o.type);
            node = std::move(o.node);
            seq = std::move(o.seq);
            site = std::move(o.site);
            callstack = std::move(o.callstack);
            id = std::move(o.id);
            aux = std::move(o.aux);
            rows_.store(o.rows_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
            o.rows_.store(0, std::memory_order_relaxed);
            return *this;
        }

        std::size_t
        size() const
        {
            return rows_.load(std::memory_order_acquire);
        }
        void push(const Record &rec);
        std::size_t bytes() const;

      private:
        std::atomic<std::size_t> rows_{0};
    };

    std::shared_ptr<SymbolPool> pool_;
    std::uint64_t seq_ = 0;
    StableVector<Columns> logs_;
    std::atomic<std::size_t> total_{0};
    std::atomic<std::size_t> serializedBytes_{0};
    std::map<std::string, QueueMeta, std::less<>> queues_;
    std::map<int, ThreadMeta> threads_;
};

/** Tracing configuration (selective vs. full, focused re-runs). */
struct TracerConfig
{
    /** Record memory accesses at all? */
    bool traceMemory = true;

    /**
     * Selective-scope policy of paper section 3.1.1: record a memory
     * access only when executing inside an RPC function, a socket/verb
     * handler, an event handler, or one of their callees.  When false,
     * every shared access is recorded (the Table 8 configuration).
     */
    bool selectiveMemory = true;

    /** Record lock/unlock operations (needed by the trigger module). */
    bool traceLocks = true;

    /**
     * Record HB-related operations (thread/event/RPC/socket/coord).
     * Disabled only to measure untraced "Base" execution (Table 6).
     */
    bool traceOps = true;

    /**
     * When non-empty, memory tracing is restricted to these variable
     * ids: the focused second run of the pull-based synchronization
     * analysis (paper section 3.2.1).  HB-related operations are
     * always recorded.
     */
    std::vector<std::string> focusVars;
};

/**
 * Run-time tracer: applies the TracerConfig policy and forwards
 * accepted records to a TraceStore.
 */
class Tracer
{
  public:
    explicit Tracer(TracerConfig config = {}) : config_(std::move(config))
    {
        for (const std::string &var : config_.focusVars)
            focusSyms_.push_back(store_.symbols().intern(var));
    }

    const TracerConfig &config() const { return config_; }
    TraceStore &store() { return store_; }
    const TraceStore &store() const { return store_; }

    /**
     * Record a memory access if the policy admits it.
     * @param rec fully populated record except for seq
     * @param in_traced_scope true when the executing thread is inside
     *        an RPC/event/message handler or one of its callees
     * @return true if the record was kept
     */
    bool recordMemAccess(Record rec, bool in_traced_scope);

    /** Record an HB-related (non-memory) operation unconditionally. */
    void recordOp(Record rec);

    /** Record a lock operation if lock tracing is enabled. */
    void recordLockOp(Record rec);

  private:
    bool focusAdmits(SymId var_id) const;

    TracerConfig config_;
    TraceStore store_;
    std::vector<SymId> focusSyms_; ///< focusVars resolved in store_'s pool
};

} // namespace dcatch::trace

#endif // DCATCH_TRACE_TRACE_STORE_HH
