/**
 * @file
 * In-memory trace storage.
 *
 * DCatch produces one trace file per thread of the target system
 * (paper section 3.1).  The store keeps one record vector per global
 * thread index, hands out globally unique sequence numbers, and knows
 * how to serialize itself to per-thread files, compute the record
 * breakdown of Table 7, and report its serialized size for Table 6/8.
 */

#ifndef DCATCH_TRACE_TRACE_STORE_HH
#define DCATCH_TRACE_TRACE_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace dcatch::trace {

/** Static metadata about one event queue (for Rule-Eserial). */
struct QueueMeta
{
    std::string queueId;        ///< unique queue identity
    int node = -1;              ///< owning node
    bool singleConsumer = true; ///< exactly one handling thread?
};

/** Static metadata about one traced thread. */
struct ThreadMeta
{
    int thread = -1;        ///< global thread index
    int node = -1;          ///< owning node
    std::string name;       ///< diagnostic name
    bool handlerThread = false; ///< event/RPC/message worker thread?
};

/** Per-run trace: per-thread record logs plus static metadata. */
class TraceStore
{
  public:
    /** Reserve the next global sequence number. */
    std::uint64_t nextSeq() { return seq_++; }

    /** Append a record to its thread's log. */
    void append(const Record &rec);

    /** Register queue metadata (idempotent per queueId). */
    void noteQueue(const QueueMeta &meta);

    /** Register thread metadata. */
    void noteThread(const ThreadMeta &meta);

    /** All records of one thread, in program order. */
    const std::vector<Record> &threadLog(int thread) const;

    /** Number of thread logs. */
    int threadCount() const { return static_cast<int>(logs_.size()); }

    /** Flatten all logs into one vector sorted by sequence number. */
    std::vector<Record> allRecords() const;

    /** Total number of records. */
    std::size_t totalRecords() const;

    /** Record counts keyed by category (Table 7). */
    std::map<RecordCategory, std::size_t> countsByCategory() const;

    /** Serialized size in bytes (what the trace files would occupy). */
    std::size_t serializedBytes() const;

    /**
     * FNV-1a digest over every record's serialized form in global
     * sequence order: two stores have equal digests iff their
     * serialized traces are byte-identical.  The record/replay
     * subsystem stores this in schedule-log headers and repro bundles
     * to certify that a replayed run reproduced the recorded trace.
     */
    std::uint64_t contentDigest() const;

    /** Write one trace file per thread into @p directory. */
    void writeToDirectory(const std::string &directory) const;

    /**
     * Load the per-thread trace files written by writeToDirectory()
     * back into this store (records only; queue/thread metadata is
     * not serialized and must be re-registered by the caller).
     * @return number of records loaded
     */
    std::size_t loadFromDirectory(const std::string &directory);

    /** Queue metadata, keyed by queueId. */
    const std::map<std::string, QueueMeta> &queues() const
    {
        return queues_;
    }

    /** Thread metadata, keyed by global thread index. */
    const std::map<int, ThreadMeta> &threads() const { return threads_; }

  private:
    std::uint64_t seq_ = 0;
    std::vector<std::vector<Record>> logs_;
    std::map<std::string, QueueMeta> queues_;
    std::map<int, ThreadMeta> threads_;
};

/** Tracing configuration (selective vs. full, focused re-runs). */
struct TracerConfig
{
    /** Record memory accesses at all? */
    bool traceMemory = true;

    /**
     * Selective-scope policy of paper section 3.1.1: record a memory
     * access only when executing inside an RPC function, a socket/verb
     * handler, an event handler, or one of their callees.  When false,
     * every shared access is recorded (the Table 8 configuration).
     */
    bool selectiveMemory = true;

    /** Record lock/unlock operations (needed by the trigger module). */
    bool traceLocks = true;

    /**
     * Record HB-related operations (thread/event/RPC/socket/coord).
     * Disabled only to measure untraced "Base" execution (Table 6).
     */
    bool traceOps = true;

    /**
     * When non-empty, memory tracing is restricted to these variable
     * ids: the focused second run of the pull-based synchronization
     * analysis (paper section 3.2.1).  HB-related operations are
     * always recorded.
     */
    std::vector<std::string> focusVars;
};

/**
 * Run-time tracer: applies the TracerConfig policy and forwards
 * accepted records to a TraceStore.
 */
class Tracer
{
  public:
    explicit Tracer(TracerConfig config = {}) : config_(std::move(config)) {}

    const TracerConfig &config() const { return config_; }
    TraceStore &store() { return store_; }
    const TraceStore &store() const { return store_; }

    /**
     * Record a memory access if the policy admits it.
     * @param rec fully populated record except for seq
     * @param in_traced_scope true when the executing thread is inside
     *        an RPC/event/message handler or one of its callees
     * @return true if the record was kept
     */
    bool recordMemAccess(Record rec, bool in_traced_scope);

    /** Record an HB-related (non-memory) operation unconditionally. */
    void recordOp(Record rec);

    /** Record a lock operation if lock tracing is enabled. */
    void recordLockOp(Record rec);

  private:
    bool focusAdmits(const std::string &var_id) const;

    TracerConfig config_;
    TraceStore store_;
};

} // namespace dcatch::trace

#endif // DCATCH_TRACE_TRACE_STORE_HH
