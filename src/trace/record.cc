#include "trace/record.hh"

#include <cstdio>
#include <limits>
#include <string_view>
#include <vector>

namespace dcatch::trace {

const char *
recordTypeName(RecordType type)
{
    switch (type) {
      case RecordType::MemRead: return "MemRead";
      case RecordType::MemWrite: return "MemWrite";
      case RecordType::ThreadCreate: return "ThreadCreate";
      case RecordType::ThreadBegin: return "ThreadBegin";
      case RecordType::ThreadEnd: return "ThreadEnd";
      case RecordType::ThreadJoin: return "ThreadJoin";
      case RecordType::EventCreate: return "EventCreate";
      case RecordType::EventBegin: return "EventBegin";
      case RecordType::EventEnd: return "EventEnd";
      case RecordType::RpcCreate: return "RpcCreate";
      case RecordType::RpcBegin: return "RpcBegin";
      case RecordType::RpcEnd: return "RpcEnd";
      case RecordType::RpcJoin: return "RpcJoin";
      case RecordType::MsgSend: return "MsgSend";
      case RecordType::MsgRecv: return "MsgRecv";
      case RecordType::CoordUpdate: return "CoordUpdate";
      case RecordType::CoordPushed: return "CoordPushed";
      case RecordType::LockAcquire: return "LockAcquire";
      case RecordType::LockRelease: return "LockRelease";
      case RecordType::LoopIter: return "LoopIter";
      case RecordType::LoopExit: return "LoopExit";
    }
    return "?";
}

RecordCategory
recordCategory(RecordType type)
{
    switch (type) {
      case RecordType::MemRead:
      case RecordType::MemWrite:
        return RecordCategory::Mem;
      case RecordType::RpcCreate:
      case RecordType::RpcBegin:
      case RecordType::RpcEnd:
      case RecordType::RpcJoin:
      case RecordType::MsgSend:
      case RecordType::MsgRecv:
        return RecordCategory::RpcSocket;
      case RecordType::EventCreate:
      case RecordType::EventBegin:
      case RecordType::EventEnd:
        return RecordCategory::Event;
      case RecordType::ThreadCreate:
      case RecordType::ThreadBegin:
      case RecordType::ThreadEnd:
      case RecordType::ThreadJoin:
        return RecordCategory::Thread;
      case RecordType::CoordUpdate:
      case RecordType::CoordPushed:
        return RecordCategory::Coord;
      case RecordType::LockAcquire:
      case RecordType::LockRelease:
        return RecordCategory::Lock;
      case RecordType::LoopIter:
      case RecordType::LoopExit:
        return RecordCategory::Loop;
    }
    return RecordCategory::Mem;
}

const char *
recordCategoryName(RecordCategory cat)
{
    switch (cat) {
      case RecordCategory::Mem: return "Mem";
      case RecordCategory::RpcSocket: return "RPC/Socket";
      case RecordCategory::Event: return "Event";
      case RecordCategory::Thread: return "Thread";
      case RecordCategory::Coord: return "Coord";
      case RecordCategory::Lock: return "Lock";
      case RecordCategory::Loop: return "Loop";
    }
    return "?";
}

bool
parseRecordType(std::string_view name, RecordType &type)
{
    static const RecordType all[] = {
        RecordType::MemRead,      RecordType::MemWrite,
        RecordType::ThreadCreate, RecordType::ThreadBegin,
        RecordType::ThreadEnd,    RecordType::ThreadJoin,
        RecordType::EventCreate,  RecordType::EventBegin,
        RecordType::EventEnd,     RecordType::RpcCreate,
        RecordType::RpcBegin,     RecordType::RpcEnd,
        RecordType::RpcJoin,      RecordType::MsgSend,
        RecordType::MsgRecv,      RecordType::CoordUpdate,
        RecordType::CoordPushed,  RecordType::LockAcquire,
        RecordType::LockRelease,  RecordType::LoopIter,
        RecordType::LoopExit,
    };
    for (RecordType candidate : all) {
        if (name == recordTypeName(candidate)) {
            type = candidate;
            return true;
        }
    }
    return false;
}

namespace {

/** Strict full-match decimal parse (no sign, no partial accept). */
bool
parseU64(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        unsigned digit = static_cast<unsigned>(c - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return false; // overflow
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

/** Strict full-match decimal parse with optional leading '-'. */
bool
parseI64(std::string_view text, std::int64_t &out)
{
    bool negative = !text.empty() && text.front() == '-';
    std::uint64_t magnitude = 0;
    if (!parseU64(negative ? text.substr(1) : text, magnitude))
        return false;
    std::uint64_t limit =
        static_cast<std::uint64_t>(
            std::numeric_limits<std::int64_t>::max()) +
        (negative ? 1u : 0u);
    if (magnitude > limit)
        return false;
    out = negative ? -static_cast<std::int64_t>(magnitude - 1) - 1
                   : static_cast<std::int64_t>(magnitude);
    return true;
}

bool
parseInt(std::string_view text, int &out)
{
    std::int64_t value = 0;
    if (!parseI64(text, value) ||
        value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max())
        return false;
    out = static_cast<int>(value);
    return true;
}

/** Count of characters %lld / %llu would emit for @p value. */
template <typename T>
std::size_t
decimalWidth(T value)
{
    std::size_t width = value < 0 ? 1 : 0;
    std::uint64_t magnitude =
        value < 0 ? ~static_cast<std::uint64_t>(value) + 1
                  : static_cast<std::uint64_t>(value);
    do {
        ++width;
        magnitude /= 10;
    } while (magnitude != 0);
    return width;
}

} // namespace

bool
Record::scanLine(std::string_view line, Record &rec,
                 std::string_view &site, std::string_view &id,
                 std::string_view &callstack, std::string *error)
{
    auto fail = [error](const char *why) {
        if (error)
            *error = why;
        return false;
    };

    // Split the first seven fields in place; the eighth (cs=) is the
    // remainder of the line verbatim — spaces in the callstack text
    // need no re-join, the raw tail IS the round-tripped value.  No
    // per-line allocation anywhere on the success path.
    std::string_view tokens[8];
    std::size_t begin = 0;
    for (int i = 0; i < 7; ++i) {
        std::size_t end = line.find(' ', begin);
        if (end == std::string_view::npos)
            return fail(
                "truncated line: expected 8 space-separated fields");
        tokens[i] = line.substr(begin, end - begin);
        begin = end + 1;
    }
    tokens[7] = line.substr(begin);

    Record out;
    if (!parseU64(tokens[0], out.seq))
        return fail("seq is not a decimal integer");
    if (!parseRecordType(tokens[1], out.type))
        return fail("unknown record type");
    if (tokens[2].size() < 2 || tokens[2][0] != 'n' ||
        !parseInt(tokens[2].substr(1), out.node))
        return fail("node field is not n<int>");
    if (tokens[3].size() < 2 || tokens[3][0] != 't' ||
        !parseInt(tokens[3].substr(1), out.thread))
        return fail("thread field is not t<int>");
    if (out.thread < 0)
        return fail("thread index is negative");

    auto strip = [](std::string_view token, std::string_view prefix,
                    std::string_view &value) {
        if (token.substr(0, prefix.size()) != prefix)
            return false;
        value = token.substr(prefix.size());
        return true;
    };
    std::string_view aux;
    if (!strip(tokens[4], "site=", site))
        return fail("field 5 does not start with site= "
                    "(embedded separator in an earlier field?)");
    if (!strip(tokens[5], "id=", id))
        return fail("field 6 does not start with id= "
                    "(embedded separator in an earlier field?)");
    if (!strip(tokens[6], "aux=", aux))
        return fail("field 7 does not start with aux=");
    if (!parseI64(aux, out.aux))
        return fail("aux is not a decimal integer");
    if (!strip(tokens[7], "cs=", callstack))
        return fail("field 8 does not start with cs=");

    rec = out;
    return true;
}

bool
Record::fromLine(const std::string &line, SymbolPool &pool, Record &rec,
                 std::string *error)
{
    Record out;
    std::string_view site, id, callstack;
    if (!scanLine(line, out, site, id, callstack, error))
        return false;
    out.site = pool.intern(site);
    out.id = pool.intern(id);
    out.callstack = pool.intern(callstack);
    rec = out;
    return true;
}

std::string
Record::toLine(const SymbolPool &pool) const
{
    std::string out;
    out.reserve(lineLength(pool));
    appendLine(pool, out);
    return out;
}

void
Record::appendLine(const SymbolPool &pool, std::string &out) const
{
    char buf[96];
    int n = std::snprintf(buf, sizeof(buf), "%llu %s n%d t%d site=",
                          static_cast<unsigned long long>(seq),
                          recordTypeName(type), node, thread);
    out.append(buf, static_cast<std::size_t>(n));
    out.append(pool.view(site));
    out.append(" id=");
    out.append(pool.view(id));
    n = std::snprintf(buf, sizeof(buf), " aux=%lld cs=",
                      static_cast<long long>(aux));
    out.append(buf, static_cast<std::size_t>(n));
    out.append(pool.view(callstack));
}

std::size_t
Record::lineLength(const SymbolPool &pool) const
{
    // "<seq> <type> n<node> t<thread> site=<site> id=<id> aux=<aux>
    //  cs=<callstack>": 7 separators + the literal field prefixes.
    return decimalWidth(seq) + 1 + std::string_view(recordTypeName(type)).size() +
           2 + decimalWidth(node) + 2 + decimalWidth(thread) +
           6 + pool.view(site).size() + 4 + pool.view(id).size() +
           5 + decimalWidth(aux) + 4 + pool.view(callstack).size();
}

} // namespace dcatch::trace
