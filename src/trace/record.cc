#include "trace/record.hh"

#include "common/util.hh"

#include <vector>

namespace dcatch::trace {

const char *
recordTypeName(RecordType type)
{
    switch (type) {
      case RecordType::MemRead: return "MemRead";
      case RecordType::MemWrite: return "MemWrite";
      case RecordType::ThreadCreate: return "ThreadCreate";
      case RecordType::ThreadBegin: return "ThreadBegin";
      case RecordType::ThreadEnd: return "ThreadEnd";
      case RecordType::ThreadJoin: return "ThreadJoin";
      case RecordType::EventCreate: return "EventCreate";
      case RecordType::EventBegin: return "EventBegin";
      case RecordType::EventEnd: return "EventEnd";
      case RecordType::RpcCreate: return "RpcCreate";
      case RecordType::RpcBegin: return "RpcBegin";
      case RecordType::RpcEnd: return "RpcEnd";
      case RecordType::RpcJoin: return "RpcJoin";
      case RecordType::MsgSend: return "MsgSend";
      case RecordType::MsgRecv: return "MsgRecv";
      case RecordType::CoordUpdate: return "CoordUpdate";
      case RecordType::CoordPushed: return "CoordPushed";
      case RecordType::LockAcquire: return "LockAcquire";
      case RecordType::LockRelease: return "LockRelease";
      case RecordType::LoopIter: return "LoopIter";
      case RecordType::LoopExit: return "LoopExit";
    }
    return "?";
}

RecordCategory
recordCategory(RecordType type)
{
    switch (type) {
      case RecordType::MemRead:
      case RecordType::MemWrite:
        return RecordCategory::Mem;
      case RecordType::RpcCreate:
      case RecordType::RpcBegin:
      case RecordType::RpcEnd:
      case RecordType::RpcJoin:
      case RecordType::MsgSend:
      case RecordType::MsgRecv:
        return RecordCategory::RpcSocket;
      case RecordType::EventCreate:
      case RecordType::EventBegin:
      case RecordType::EventEnd:
        return RecordCategory::Event;
      case RecordType::ThreadCreate:
      case RecordType::ThreadBegin:
      case RecordType::ThreadEnd:
      case RecordType::ThreadJoin:
        return RecordCategory::Thread;
      case RecordType::CoordUpdate:
      case RecordType::CoordPushed:
        return RecordCategory::Coord;
      case RecordType::LockAcquire:
      case RecordType::LockRelease:
        return RecordCategory::Lock;
      case RecordType::LoopIter:
      case RecordType::LoopExit:
        return RecordCategory::Loop;
    }
    return RecordCategory::Mem;
}

const char *
recordCategoryName(RecordCategory cat)
{
    switch (cat) {
      case RecordCategory::Mem: return "Mem";
      case RecordCategory::RpcSocket: return "RPC/Socket";
      case RecordCategory::Event: return "Event";
      case RecordCategory::Thread: return "Thread";
      case RecordCategory::Coord: return "Coord";
      case RecordCategory::Lock: return "Lock";
      case RecordCategory::Loop: return "Loop";
    }
    return "?";
}

bool
parseRecordType(const std::string &name, RecordType &type)
{
    static const RecordType all[] = {
        RecordType::MemRead,      RecordType::MemWrite,
        RecordType::ThreadCreate, RecordType::ThreadBegin,
        RecordType::ThreadEnd,    RecordType::ThreadJoin,
        RecordType::EventCreate,  RecordType::EventBegin,
        RecordType::EventEnd,     RecordType::RpcCreate,
        RecordType::RpcBegin,     RecordType::RpcEnd,
        RecordType::RpcJoin,      RecordType::MsgSend,
        RecordType::MsgRecv,      RecordType::CoordUpdate,
        RecordType::CoordPushed,  RecordType::LockAcquire,
        RecordType::LockRelease,  RecordType::LoopIter,
        RecordType::LoopExit,
    };
    for (RecordType candidate : all) {
        if (name == recordTypeName(candidate)) {
            type = candidate;
            return true;
        }
    }
    return false;
}

bool
Record::fromLine(const std::string &line, Record &rec)
{
    std::vector<std::string> tokens = split(line, ' ');
    if (tokens.size() != 8)
        return false;
    Record out;
    try {
        out.seq = std::stoull(tokens[0]);
        if (!parseRecordType(tokens[1], out.type))
            return false;
        if (tokens[2].size() < 2 || tokens[2][0] != 'n' ||
            tokens[3].size() < 2 || tokens[3][0] != 't')
            return false;
        out.node = std::stoi(tokens[2].substr(1));
        out.thread = std::stoi(tokens[3].substr(1));
        auto field = [](const std::string &token, const char *prefix,
                        std::string &value) {
            std::string pre(prefix);
            if (token.rfind(pre, 0) != 0)
                return false;
            value = token.substr(pre.size());
            return true;
        };
        std::string aux;
        if (!field(tokens[4], "site=", out.site) ||
            !field(tokens[5], "id=", out.id) ||
            !field(tokens[6], "aux=", aux) ||
            !field(tokens[7], "cs=", out.callstack))
            return false;
        out.aux = std::stoll(aux);
    } catch (...) {
        return false;
    }
    rec = out;
    return true;
}

std::string
Record::toLine() const
{
    return strprintf("%llu %s n%d t%d site=%s id=%s aux=%lld cs=%s",
                     static_cast<unsigned long long>(seq),
                     recordTypeName(type), node, thread, site.c_str(),
                     id.c_str(), static_cast<long long>(aux),
                     callstack.c_str());
}

} // namespace dcatch::trace
