#include "trace/trace_store.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "common/util.hh"

namespace dcatch::trace {

void
TraceStore::append(const Record &rec)
{
    if (rec.thread < 0) {
        DCATCH_WARN() << "dropping record with no thread: " << rec.toLine();
        return;
    }
    if (static_cast<std::size_t>(rec.thread) >= logs_.size())
        logs_.resize(static_cast<std::size_t>(rec.thread) + 1);
    logs_[static_cast<std::size_t>(rec.thread)].push_back(rec);
}

void
TraceStore::noteQueue(const QueueMeta &meta)
{
    queues_.emplace(meta.queueId, meta);
}

void
TraceStore::noteThread(const ThreadMeta &meta)
{
    threads_[meta.thread] = meta;
}

const std::vector<Record> &
TraceStore::threadLog(int thread) const
{
    static const std::vector<Record> empty;
    if (thread < 0 || static_cast<std::size_t>(thread) >= logs_.size())
        return empty;
    return logs_[static_cast<std::size_t>(thread)];
}

std::vector<Record>
TraceStore::allRecords() const
{
    std::vector<Record> all;
    all.reserve(totalRecords());
    for (const auto &log : logs_)
        all.insert(all.end(), log.begin(), log.end());
    std::sort(all.begin(), all.end(),
              [](const Record &a, const Record &b) { return a.seq < b.seq; });
    return all;
}

std::size_t
TraceStore::totalRecords() const
{
    std::size_t n = 0;
    for (const auto &log : logs_)
        n += log.size();
    return n;
}

std::map<RecordCategory, std::size_t>
TraceStore::countsByCategory() const
{
    std::map<RecordCategory, std::size_t> counts;
    for (const auto &log : logs_)
        for (const Record &rec : log)
            ++counts[recordCategory(rec.type)];
    return counts;
}

std::size_t
TraceStore::serializedBytes() const
{
    std::size_t bytes = 0;
    for (const auto &log : logs_)
        for (const Record &rec : log)
            bytes += rec.toLine().size() + 1;
    return bytes;
}

std::uint64_t
TraceStore::contentDigest() const
{
    std::uint64_t hash = 14695981039346656037ull;
    auto mix = [&hash](const char *data, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= static_cast<unsigned char>(data[i]);
            hash *= 1099511628211ull;
        }
    };
    for (const Record &rec : allRecords()) {
        std::string line = rec.toLine();
        mix(line.data(), line.size());
        mix("\n", 1);
    }
    return hash;
}

void
TraceStore::writeToDirectory(const std::string &directory) const
{
    std::filesystem::create_directories(directory);
    for (std::size_t t = 0; t < logs_.size(); ++t) {
        if (logs_[t].empty())
            continue;
        std::string name = strprintf("thread-%03zu.trace", t);
        std::ofstream out(std::filesystem::path(directory) / name);
        for (const Record &rec : logs_[t])
            out << rec.toLine() << '\n';
    }
}

std::size_t
TraceStore::loadFromDirectory(const std::string &directory)
{
    std::size_t loaded = 0;
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory))
        if (entry.path().extension() == ".trace")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            Record rec;
            if (!Record::fromLine(line, rec)) {
                DCATCH_WARN() << "skipping malformed trace line in "
                              << path.string();
                continue;
            }
            if (rec.seq >= seq_)
                seq_ = rec.seq + 1;
            append(rec);
            ++loaded;
        }
    }
    return loaded;
}

bool
Tracer::focusAdmits(const std::string &var_id) const
{
    if (config_.focusVars.empty())
        return true;
    return std::find(config_.focusVars.begin(), config_.focusVars.end(),
                     var_id) != config_.focusVars.end();
}

bool
Tracer::recordMemAccess(Record rec, bool in_traced_scope)
{
    if (!config_.traceMemory)
        return false;
    if (!config_.focusVars.empty()) {
        // Focused re-run (pull analysis): record every access to the
        // focus variables regardless of scope, and nothing else.
        if (!focusAdmits(rec.id))
            return false;
    } else if (config_.selectiveMemory && !in_traced_scope) {
        return false;
    }
    rec.seq = store_.nextSeq();
    store_.append(rec);
    return true;
}

void
Tracer::recordOp(Record rec)
{
    if (!config_.traceOps)
        return;
    rec.seq = store_.nextSeq();
    store_.append(rec);
}

void
Tracer::recordLockOp(Record rec)
{
    if (!config_.traceLocks)
        return;
    rec.seq = store_.nextSeq();
    store_.append(rec);
}

} // namespace dcatch::trace
