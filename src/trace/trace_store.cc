#include "trace/trace_store.hh"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "common/util.hh"

namespace dcatch::trace {

// ---------------------------------------------------------------------
// Columns
// ---------------------------------------------------------------------

void
TraceStore::Columns::push(const Record &rec)
{
    // Write every column, then release-publish the row count: a
    // reader that acquires size() >= n sees rows [0, n) complete.
    std::size_t row = type.push_back(rec.type);
    node.push_back(rec.node);
    seq.push_back(rec.seq);
    site.push_back(rec.site);
    callstack.push_back(rec.callstack);
    id.push_back(rec.id);
    aux.push_back(rec.aux);
    rows_.store(row + 1, std::memory_order_release);
}

std::size_t
TraceStore::Columns::bytes() const
{
    return type.capacityBytes() + node.capacityBytes() +
           seq.capacityBytes() + site.capacityBytes() +
           callstack.capacityBytes() + id.capacityBytes() +
           aux.capacityBytes();
}

// ---------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------

const TraceStore::Columns &
TraceStore::RecordView::cols() const
{
    return store_->logs_[static_cast<std::size_t>(thread_)];
}

Record
TraceStore::RecordView::record() const
{
    const Columns &c = cols();
    Record rec;
    rec.type = c.type[row_];
    rec.node = c.node[row_];
    rec.thread = thread_;
    rec.seq = c.seq[row_];
    rec.site = c.site[row_];
    rec.callstack = c.callstack[row_];
    rec.id = c.id[row_];
    rec.aux = c.aux[row_];
    return rec;
}

std::size_t
TraceStore::ThreadLogView::size() const
{
    if (thread_ < 0 ||
        static_cast<std::size_t>(thread_) >= store_->logs_.size())
        return 0;
    return store_->logs_[static_cast<std::size_t>(thread_)].size();
}

TraceStore::MergedView::iterator::iterator(const TraceStore *store)
    : store_(store)
{
    // Snapshot every thread's published row count: a writer appending
    // concurrently extends the logs, but this iterator merges exactly
    // the prefix visible now (remaining_ must equal the sum of the
    // limits or the end() comparison would run past the snapshot).
    std::size_t threads = store->logs_.size();
    cursor_.assign(threads, 0);
    limit_.resize(threads);
    remaining_ = 0;
    for (std::size_t t = 0; t < threads; ++t) {
        limit_[t] = store->logs_[t].size();
        remaining_ += limit_[t];
    }
    findMin();
}

void
TraceStore::MergedView::iterator::findMin()
{
    current_ = -1;
    std::uint64_t best = 0;
    for (std::size_t t = 0; t < cursor_.size(); ++t) {
        if (cursor_[t] >= limit_[t])
            continue;
        std::uint64_t seq = store_->logs_[t].seq[cursor_[t]];
        if (current_ < 0 || seq < best) {
            best = seq;
            current_ = static_cast<int>(t);
        }
    }
}

TraceStore::MergedView::iterator &
TraceStore::MergedView::iterator::operator++()
{
    ++cursor_[static_cast<std::size_t>(current_)];
    --remaining_;
    if (remaining_ > 0)
        findMin();
    return *this;
}

std::vector<Record>
TraceStore::mergedRecords() const
{
    std::vector<Record> all;
    all.reserve(totalRecords());
    for (auto it = merged().begin(); it != merged().end(); ++it)
        all.push_back((*it).record());
    return all;
}

// ---------------------------------------------------------------------
// TraceStore
// ---------------------------------------------------------------------

void
TraceStore::append(const Record &rec)
{
    if (rec.thread < 0) {
        DCATCH_WARN() << "dropping record with no thread: "
                      << rec.toLine(*pool_);
        return;
    }
    if (static_cast<std::size_t>(rec.thread) >= logs_.size())
        logs_.ensureSize(static_cast<std::size_t>(rec.thread) + 1);
    Columns &log = logs_[static_cast<std::size_t>(rec.thread)];
    // The merged view relies on per-thread seq monotonicity (global
    // counter, stamped in append order).
    assert((log.size() == 0 || log.seq.back() < rec.seq) &&
           "per-thread sequence numbers must be ascending");
    log.push(rec);
    serializedBytes_.fetch_add(rec.lineLength(*pool_) + 1, // + '\n'
                               std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_release);
}

void
TraceStore::noteQueue(const QueueMeta &meta)
{
    queues_.emplace(meta.queueId, meta);
}

void
TraceStore::noteThread(const ThreadMeta &meta)
{
    threads_[meta.thread] = meta;
}

std::map<RecordCategory, std::size_t>
TraceStore::countsByCategory() const
{
    std::map<RecordCategory, std::size_t> counts;
    for (const Columns &log : logs_) {
        std::size_t rows = log.size();
        for (std::size_t i = 0; i < rows; ++i)
            ++counts[recordCategory(log.type[i])];
    }
    return counts;
}

std::size_t
TraceStore::serializedBytes() const
{
#ifndef NDEBUG
    // The cache is maintained arithmetically in append(); cross-check
    // it against actual serialization in debug builds.
    std::size_t slow = 0;
    for (std::size_t t = 0; t < logs_.size(); ++t)
        for (std::size_t i = 0; i < logs_[t].size(); ++i)
            slow += RecordView(this, static_cast<int>(t), i)
                        .record()
                        .toLine(*pool_)
                        .size() +
                    1;
    assert(slow == serializedBytes_.load(std::memory_order_relaxed) &&
           "incremental serializedBytes cache out of sync");
#endif
    return serializedBytes_.load(std::memory_order_relaxed);
}

std::size_t
TraceStore::memoryBytes() const
{
    std::size_t bytes = pool_->bytes();
    for (const Columns &log : logs_)
        bytes += log.bytes();
    return bytes;
}

std::uint64_t
TraceStore::contentDigest() const
{
    std::uint64_t hash = 14695981039346656037ull;
    auto mix = [&hash](const char *data, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= static_cast<unsigned char>(data[i]);
            hash *= 1099511628211ull;
        }
    };
    std::string line;
    for (auto it = merged().begin(); it != merged().end(); ++it) {
        line.clear();
        (*it).record().appendLine(*pool_, line);
        mix(line.data(), line.size());
        mix("\n", 1);
    }
    return hash;
}

void
TraceStore::writeToDirectory(const std::string &directory) const
{
    std::filesystem::create_directories(directory);
    std::string line;
    for (std::size_t t = 0; t < logs_.size(); ++t) {
        const Columns &log = logs_[t];
        if (log.size() == 0)
            continue;
        std::string name = strprintf("thread-%03zu.trace", t);
        std::ofstream out(std::filesystem::path(directory) / name);
        for (std::size_t i = 0; i < log.size(); ++i) {
            line.clear();
            RecordView(this, static_cast<int>(t), i)
                .record()
                .appendLine(*pool_, line);
            out << line << '\n';
        }
    }
}

std::size_t
TraceStore::loadFromDirectory(const std::string &directory)
{
    std::size_t loaded = 0;
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory))
        if (entry.path().extension() == ".trace")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        std::ifstream in(path);
        std::string line;
        std::size_t line_no = 0;
        std::uint64_t prev_seq = 0;
        bool have_prev = false;
        while (std::getline(in, line)) {
            ++line_no;
            Record rec;
            std::string why;
            if (!Record::fromLine(line, *pool_, rec, &why))
                throw TraceParseError(strprintf(
                    "%s:%zu: malformed trace line (%s): %s",
                    path.string().c_str(), line_no, why.c_str(),
                    line.c_str()));
            if (have_prev && rec.seq <= prev_seq)
                throw TraceParseError(strprintf(
                    "%s:%zu: out-of-order sequence number %llu (after "
                    "%llu)",
                    path.string().c_str(), line_no,
                    static_cast<unsigned long long>(rec.seq),
                    static_cast<unsigned long long>(prev_seq)));
            prev_seq = rec.seq;
            have_prev = true;
            if (rec.seq >= seq_)
                seq_ = rec.seq + 1;
            append(rec);
            ++loaded;
        }
    }
    return loaded;
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

bool
Tracer::focusAdmits(SymId var_id) const
{
    if (focusSyms_.empty())
        return true;
    return std::find(focusSyms_.begin(), focusSyms_.end(), var_id) !=
           focusSyms_.end();
}

bool
Tracer::recordMemAccess(Record rec, bool in_traced_scope)
{
    if (!config_.traceMemory)
        return false;
    if (!config_.focusVars.empty()) {
        // Focused re-run (pull analysis): record every access to the
        // focus variables regardless of scope, and nothing else.
        if (!focusAdmits(rec.id))
            return false;
    } else if (config_.selectiveMemory && !in_traced_scope) {
        return false;
    }
    rec.seq = store_.nextSeq();
    store_.append(rec);
    return true;
}

void
Tracer::recordOp(Record rec)
{
    if (!config_.traceOps)
        return;
    rec.seq = store_.nextSeq();
    store_.append(rec);
}

void
Tracer::recordLockOp(Record rec)
{
    if (!config_.traceLocks)
        return;
    rec.seq = store_.nextSeq();
    store_.append(rec);
}

} // namespace dcatch::trace
