#include "serve/service.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"
#include "common/util.hh"

namespace dcatch::serve {

ServeCore::ServeCore(ServeOptions options) : options_(options)
{
    if (options_.jobs < 1)
        options_.jobs = 1;
    shards_.reserve(static_cast<std::size_t>(options_.jobs));
    for (int i = 0; i < options_.jobs; ++i) {
        shards_.push_back(std::make_unique<Shard>());
        Shard &shard = *shards_.back();
        shard.worker = std::thread([this, &shard] { workerLoop(shard); });
    }
}

ServeCore::~ServeCore() { shutdown(); }

ConnId
ServeCore::connect()
{
    std::lock_guard<std::mutex> lock(connsMutex_);
    ConnId id = nextConn_++;
    conns_.emplace(id, std::make_shared<Conn>());
    connections_.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::shared_ptr<ServeCore::Conn>
ServeCore::findConn(ConnId conn)
{
    std::lock_guard<std::mutex> lock(connsMutex_);
    auto it = conns_.find(conn);
    return it == conns_.end() ? nullptr : it->second;
}

std::shared_ptr<Session>
ServeCore::bindSession(const std::string &runId)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    auto it = sessions_.find(runId);
    if (it != sessions_.end())
        return it->second;
    SessionOptions session_options;
    session_options.window = options_.window;
    session_options.retainEpochs = options_.retainEpochs;
    session_options.batch = options_.batch;
    auto session = std::make_shared<Session>(runId, session_options);
    sessions_.emplace(runId, session);
    shardOf_[session.get()] =
        std::hash<std::string>{}(runId) % shards_.size();
    sessionsOpened_.fetch_add(1, std::memory_order_relaxed);
    return session;
}

void
ServeCore::emitTo(const std::shared_ptr<Conn> &conn, FrameType type,
                  const std::string &payload)
{
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->outbox.push_back(Frame{type, payload});
    conn->ready.notify_all();
}

bool
ServeCore::deliver(ConnId connId, const char *data, std::size_t size)
{
    std::shared_ptr<Conn> conn = findConn(connId);
    if (conn == nullptr)
        return false;
    bytesDelivered_.fetch_add(size, std::memory_order_relaxed);

    std::vector<Frame> frames;
    std::string why;
    if (!conn->reader.feed(data, size, frames, &why)) {
        emitTo(conn, FrameType::Error,
               strprintf("connection %llu: %s",
                         static_cast<unsigned long long>(connId),
                         why.c_str()));
        return false;
    }
    framesDelivered_.fetch_add(frames.size(),
                               std::memory_order_relaxed);

    for (Frame &frame : frames) {
        if (conn->session == nullptr) {
            // The first frame must bind a session; parse the Hello
            // here (cheap) so the frame can be routed to its shard.
            if (frame.type != FrameType::Hello) {
                emitTo(conn, FrameType::Error,
                       strprintf("connection %llu: expected Hello, "
                                 "got %s",
                                 static_cast<unsigned long long>(
                                     connId),
                                 frameTypeName(frame.type)));
                return false;
            }
            Hello hello;
            if (!parseHello(frame.payload, hello, &why)) {
                emitTo(conn, FrameType::Error,
                       strprintf("connection %llu: %s",
                                 static_cast<unsigned long long>(
                                     connId),
                                 why.c_str()));
                return false;
            }
            conn->session = bindSession(hello.runId);
        }
        Task task;
        task.session = conn->session;
        task.connId = connId;
        task.frame = std::move(frame);
        std::size_t shard;
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            auto it = shardOf_.find(task.session.get());
            // A reaped session keeps its hash shard so stray frames
            // still drain through the same (now trivial) path.
            shard = it != shardOf_.end()
                        ? it->second
                        : std::hash<std::string>{}(
                              task.session->runId()) %
                              shards_.size();
        }
        enqueue(shard, std::move(task));
    }
    return true;
}

void
ServeCore::disconnect(ConnId connId)
{
    std::shared_ptr<Conn> conn;
    {
        std::lock_guard<std::mutex> lock(connsMutex_);
        auto it = conns_.find(connId);
        if (it == conns_.end())
            return;
        conn = it->second;
        conns_.erase(it);
    }
    if (conn->session == nullptr)
        return;
    Task task;
    task.session = conn->session;
    task.connId = connId;
    task.disconnect = true;
    std::size_t shard;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        auto it = shardOf_.find(task.session.get());
        if (it == shardOf_.end())
            return; // already reaped
        shard = it->second;
    }
    enqueue(shard, std::move(task));
}

std::vector<Frame>
ServeCore::poll(ConnId connId)
{
    std::shared_ptr<Conn> conn = findConn(connId);
    std::vector<Frame> out;
    if (conn == nullptr)
        return out;
    std::lock_guard<std::mutex> lock(conn->mutex);
    out.swap(conn->outbox);
    return out;
}

std::vector<Frame>
ServeCore::pollWait(ConnId connId, std::chrono::milliseconds timeout)
{
    std::shared_ptr<Conn> conn = findConn(connId);
    std::vector<Frame> out;
    if (conn == nullptr)
        return out;
    std::unique_lock<std::mutex> lock(conn->mutex);
    conn->ready.wait_for(lock, timeout,
                         [&] { return !conn->outbox.empty(); });
    out.swap(conn->outbox);
    return out;
}

void
ServeCore::enqueue(std::size_t shard, Task task)
{
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    Shard &s = *shards_[shard];
    s.queue.push(std::move(task));
    // Notify under the mutex so a worker between its empty-check and
    // its wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(s.mutex);
    s.wake.notify_one();
}

void
ServeCore::workerLoop(Shard &shard)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(shard.mutex);
            shard.wake.wait(lock, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       !shard.queue.empty();
            });
        }
        Task task;
        while (shard.queue.pop(task)) {
            process(task);
            inFlight_.fetch_sub(1, std::memory_order_relaxed);
        }
        if (stopping_.load(std::memory_order_acquire) &&
            shard.queue.empty())
            return;
    }
}

void
ServeCore::process(const Task &task)
{
    Session::Emit emit = [this](ConnId to, FrameType type,
                                const std::string &payload) {
        std::shared_ptr<Conn> conn = findConn(to);
        if (conn != nullptr)
            emitTo(conn, type, payload);
        // else: the connection is gone; the frame is dropped.
    };
    if (task.disconnect)
        task.session->disconnect(task.connId, emit);
    else
        task.session->handle(task.connId, task.frame, emit);
    if (task.session->finished())
        reap(task.session);
}

void
ServeCore::reap(const std::shared_ptr<Session> &session)
{
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        // Idempotent: a straggler task touching a finished session
        // triggers reap again; only the first fold counts.
        if (shardOf_.erase(session.get()) == 0)
            return;
        auto it = sessions_.find(session->runId());
        if (it != sessions_.end() && it->second == session)
            sessions_.erase(it);
    }
    const SessionStats &stats = session->stats();
    std::lock_guard<std::mutex> lock(reapedMutex_);
    reaped_.recordsIngested += stats.records;
    reaped_.sessionsFinished += 1;
    reaped_.sessionsQuarantined += stats.quarantined ? 1 : 0;
    reaped_.onlineCandidates += stats.onlineCandidates;
    reaped_.epochsClosed += stats.epochsClosed;
    reaped_.evictedAccesses += stats.evictedAccesses;
    reaped_.maxPendingBytes =
        std::max(reaped_.maxPendingBytes, stats.maxPendingBytes);
    reaped_.maxOnlineIndexBytes = std::max(
        reaped_.maxOnlineIndexBytes, stats.maxOnlineIndexBytes);
}

void
ServeCore::drain()
{
    while (inFlight_.load(std::memory_order_acquire) != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void
ServeCore::shutdown()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
        return;
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->wake.notify_all();
    }
    for (auto &shard : shards_)
        if (shard->worker.joinable())
            shard->worker.join();
}

ServeStats
ServeCore::stats() const
{
    // Per-session counters fold in when a session finishes (reap);
    // live sessions are owned by their shard worker and are not read
    // concurrently.  Quiesce with drain() before reading when exact
    // totals matter.
    ServeStats stats;
    {
        std::lock_guard<std::mutex> lock(reapedMutex_);
        stats = reaped_;
    }
    stats.connections = connections_.load(std::memory_order_relaxed);
    stats.bytesDelivered =
        bytesDelivered_.load(std::memory_order_relaxed);
    stats.framesDelivered =
        framesDelivered_.load(std::memory_order_relaxed);
    stats.sessionsOpened =
        sessionsOpened_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace dcatch::serve
