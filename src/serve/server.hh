/**
 * @file
 * Socket front end for dcatchd: listens on a unix-domain or TCP
 * address, reads length-prefixed frames per connection, and forwards
 * the byte stream into ServeCore.  One reader thread per connection
 * (producers number in the tens, not thousands); the analysis itself
 * runs on ServeCore's shard workers.
 *
 * Addresses:
 *   unix:/path/to.sock      unix-domain stream socket
 *   tcp:HOST:PORT           IPv4 TCP (PORT 0 picks a free port;
 *                           boundAddress() reports the real one)
 *
 * Shutdown: requestStop() is async-signal-safe (an atomic store), so
 * the CLI's SIGTERM/SIGINT handler calls it directly; run() then
 * drains connections, flushes pending output, and returns.
 */

#ifndef DCATCH_SERVE_SERVER_HH
#define DCATCH_SERVE_SERVER_HH

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hh"

namespace dcatch::serve {

/** Parsed listen/connect address. */
struct Address
{
    bool isUnix = false;
    std::string path; ///< unix socket path
    std::string host; ///< TCP host (numeric IPv4 or "localhost")
    int port = 0;
};

/** Parse "unix:..." / "tcp:HOST:PORT".
 *  @return false with @p error set when malformed. */
bool parseAddress(const std::string &text, Address &out,
                  std::string *error);

/** Client side: connect a stream socket to @p address.
 *  @return the fd, or -1 with @p error set. */
int connectTo(const Address &address, std::string *error);

/** The dcatchd socket server. */
class Server
{
  public:
    /** Bind + listen; throws std::runtime_error on failure. */
    Server(ServeCore &core, const Address &address);
    ~Server();

    /** The bound address ("tcp:host:port" with the resolved port). */
    std::string boundAddress() const;

    /** Accept/serve until requestStop(); returns once drained. */
    void run();

    /** Async-signal-safe stop request. */
    void requestStop() { stop_.store(true, std::memory_order_release); }

  private:
    void serveConnection(int fd);

    ServeCore &core_;
    Address address_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    std::vector<std::thread> readers_;
};

} // namespace dcatch::serve

#endif // DCATCH_SERVE_SERVER_HH
