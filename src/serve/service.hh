/**
 * @file
 * ServeCore: the transport-independent heart of dcatchd.
 *
 * Byte streams from any number of connections are framed
 * (serve/wire.hh), routed through per-shard lock-free MPSC queues
 * (common/mpsc_queue.hh), and drained by `jobs` shard workers.  Every
 * frame of one run lands on the same shard (hash of the run id), so a
 * Session never needs a lock; different runs analyze concurrently on
 * different shards.  Producers — socket reader threads or in-process
 * callers — block on nothing: push is wait-free and outputs are
 * buffered per connection until polled.
 *
 * The socket layer (serve/server.hh) is a thin wrapper; tests and the
 * throughput bench drive ServeCore directly with deliver()/poll(), so
 * protocol behavior is pinned independent of socket plumbing.
 *
 * Contract per connection: connect(), then deliver() calls from one
 * thread at a time, then disconnect().  poll()/pollWait() may be
 * called from any thread.
 */

#ifndef DCATCH_SERVE_SERVICE_HH
#define DCATCH_SERVE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hh"
#include "serve/session.hh"
#include "serve/wire.hh"

namespace dcatch::serve {

/** Daemon configuration (from `dcatch serve` flags). */
struct ServeOptions
{
    int jobs = 1;              ///< shard worker threads (>= 1)
    std::size_t window = 4096; ///< records per detection epoch
    int retainEpochs = 2;      ///< epochs kept in the online index
    std::size_t batch = 256;   ///< records per watermark-merge slice
};

/** Aggregated daemon counters (live sessions + reaped ones). */
struct ServeStats
{
    std::size_t connections = 0;      ///< ever accepted
    std::size_t bytesDelivered = 0;
    std::size_t framesDelivered = 0;
    std::size_t recordsIngested = 0;
    std::size_t sessionsOpened = 0;
    std::size_t sessionsFinished = 0;
    std::size_t sessionsQuarantined = 0;
    std::size_t onlineCandidates = 0;
    std::size_t epochsClosed = 0;
    std::size_t evictedAccesses = 0;
    std::size_t maxPendingBytes = 0;     ///< reorder-buffer high water
    std::size_t maxOnlineIndexBytes = 0; ///< online-index high water
};

/** The in-process dcatchd service. */
class ServeCore
{
  public:
    explicit ServeCore(ServeOptions options);
    ~ServeCore();

    ServeCore(const ServeCore &) = delete;
    ServeCore &operator=(const ServeCore &) = delete;

    /** Register a connection; the id routes deliver()/poll(). */
    ConnId connect();

    /**
     * Feed @p size raw bytes from @p conn's stream.
     * @return false when the connection must be closed (framing
     *         violation or protocol error before a session bound);
     *         an Error frame with the reason is already in the
     *         connection's outbox.
     */
    bool deliver(ConnId conn, const char *data, std::size_t size);

    /** The connection closed; its producer implicitly Ends. */
    void disconnect(ConnId conn);

    /** Drain @p conn's buffered server->client frames (non-blocking). */
    std::vector<Frame> poll(ConnId conn);

    /** Like poll(), but waits up to @p timeout for the first frame. */
    std::vector<Frame> pollWait(ConnId conn,
                                std::chrono::milliseconds timeout);

    /**
     * Block until every queued frame has been processed (the shard
     * queues are momentarily empty).  Test/bench aid; producers keep
     * pushing concurrently at their own risk of re-arming it.
     */
    void drain();

    /** Stop the workers after draining queued work.  Idempotent;
     *  called by the destructor. */
    void shutdown();

    ServeStats stats() const;
    const ServeOptions &options() const { return options_; }

  private:
    struct Conn
    {
        FrameReader reader;
        std::shared_ptr<Session> session; ///< bound by Hello
        std::mutex mutex;                 ///< guards outbox
        std::condition_variable ready;
        std::vector<Frame> outbox;
    };

    struct Task
    {
        std::shared_ptr<Session> session;
        std::shared_ptr<Conn> conn;
        ConnId connId = 0;
        Frame frame;
        bool disconnect = false;
    };

    struct Shard
    {
        MpscQueue<Task> queue;
        std::mutex mutex; ///< pairs with wake for sleep/notify
        std::condition_variable wake;
        std::thread worker;
    };

    std::shared_ptr<Conn> findConn(ConnId conn);
    std::shared_ptr<Session> bindSession(const std::string &runId);
    void enqueue(std::size_t shard, Task task);
    void workerLoop(Shard &shard);
    void process(const Task &task);
    void emitTo(const std::shared_ptr<Conn> &conn, FrameType type,
                const std::string &payload);
    void reap(const std::shared_ptr<Session> &session);

    ServeOptions options_;

    mutable std::mutex connsMutex_;
    std::map<ConnId, std::shared_ptr<Conn>> conns_;
    std::uint64_t nextConn_ = 1;

    mutable std::mutex sessionsMutex_;
    std::map<std::string, std::shared_ptr<Session>> sessions_;
    std::map<const Session *, std::size_t> shardOf_;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> inFlight_{0}; ///< queued, not yet processed

    /// @{ @name Counters (relaxed; exact once quiescent)
    std::atomic<std::size_t> connections_{0};
    std::atomic<std::size_t> bytesDelivered_{0};
    std::atomic<std::size_t> framesDelivered_{0};
    std::atomic<std::size_t> sessionsOpened_{0};
    /// @}

    mutable std::mutex reapedMutex_;
    ServeStats reaped_; ///< accumulated stats of finished sessions
};

} // namespace dcatch::serve

#endif // DCATCH_SERVE_SERVICE_HH
