/**
 * @file
 * One dcatchd session: the online analysis of a single run streamed
 * by one or more producers (docs/serve.md).
 *
 * A session owns the run's trace::TraceStore, a streaming
 * hb::HbGraph, and the epoch-windowed online race detector.  Records
 * arrive per producer in ascending-sequence order; the session merges
 * the producer streams behind a watermark (the smallest last-seen
 * sequence number over producers that have not yet sent End) so the
 * HB graph always ingests the global interleaving in sequence order —
 * the same order the batch pipeline's merged view iterates — which is
 * what makes the final report byte-identical to the batch
 * trace-analysis stage for every producer count and interleaving.
 *
 * Epochs: every `window` ingested records close an epoch.  Closing an
 * epoch flushes the incremental HB closure and tests the epoch's
 * memory accesses against the accesses retained from the last
 * `retainEpochs` epochs, emitting new candidates online (Candidate
 * frames, deduplicated by callstack pair).  Accesses older than the
 * retention window are evicted, bounding the online index regardless
 * of run length; a cross-window race is still caught by the final
 * report, which covers the whole graph.
 *
 * Malformed input (unparseable record line, out-of-order sequence,
 * metadata defects, Hello mismatches) quarantines the session: an
 * Error frame carrying the defect — in loadFromDirectory's
 * TraceParseError format, with producer/frame/line coordinates in
 * place of file/line — goes to every attached producer, analysis
 * stops, and later frames for the run are counted and dropped.  The
 * daemon itself never crashes or wedges on bad input.
 *
 * Threading: all methods are called by the single shard worker that
 * owns the session (ServeCore routes every frame of one run to one
 * shard), so the session itself needs no locks; emitted frames go
 * through the Emit sink, which is thread-safe on the ServeCore side.
 */

#ifndef DCATCH_SERVE_SESSION_HH
#define DCATCH_SERVE_SESSION_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "detect/report.hh"
#include "detect/streaming.hh"
#include "hb/graph.hh"
#include "serve/wire.hh"
#include "trace/trace_store.hh"

namespace dcatch::serve {

/** Connection identity assigned by ServeCore. */
using ConnId = std::uint64_t;

/** Per-session tuning (from `dcatch serve` flags). */
struct SessionOptions
{
    std::size_t window = 4096; ///< records per epoch (>= 1)
    int retainEpochs = 2;      ///< closed epochs kept in the online index
    /** Records released per watermark-merge slice (>= 1).  Purely an
     *  amortization granularity — the merge order, epochs, and every
     *  emitted frame are identical for any value. */
    std::size_t batch = 256;
};

/** Counters a session exposes (aggregated by ServeCore::stats). */
struct SessionStats
{
    std::size_t records = 0;        ///< records ingested into the store
    std::size_t frames = 0;         ///< client frames handled
    std::size_t epochsClosed = 0;
    std::size_t onlineCandidates = 0; ///< distinct online emissions
    std::size_t evictedAccesses = 0;  ///< online-index entries evicted
    std::size_t droppedFrames = 0;    ///< frames ignored post-quarantine
    std::size_t maxPendingBytes = 0;  ///< reorder-buffer high-water mark
    std::size_t maxOnlineIndexBytes = 0; ///< online-index high-water mark
    bool quarantined = false;
    bool finished = false;
    bool streamExact = false; ///< final graph needed no batch rebuild
};

/**
 * Render the canonical candidate report — the byte-equivalence
 * artifact.  The same function produces the daemon's Report payload
 * and the client-side batch expectation (`dcatch_feed --check`), so
 * "identical candidate sets" is literal byte equality.
 */
std::string canonicalReport(const std::string &runId,
                            std::size_t records,
                            const std::vector<detect::Candidate> &);

/** One streamed run under analysis. */
class Session
{
  public:
    /** Sink for server->client frames (thread-safe on the callee). */
    using Emit =
        std::function<void(ConnId, FrameType, const std::string &)>;

    Session(std::string runId, SessionOptions options);
    ~Session();

    /** Handle one client frame from @p conn. */
    void handle(ConnId conn, const Frame &frame, const Emit &emit);

    /** The producer on @p conn vanished without End (connection
     *  dropped); treated as an implicit End so the run still
     *  finalizes. */
    void disconnect(ConnId conn, const Emit &emit);

    /** True once the final Report/Error went out; the session can be
     *  reaped. */
    bool finished() const { return stats_.finished; }

    const std::string &runId() const { return runId_; }
    const SessionStats &stats() const { return stats_; }

  private:
    struct Producer
    {
        ConnId conn = 0;
        std::deque<trace::Record> pending; ///< parsed, not yet merged
        std::uint64_t lastSeq = 0;
        bool haveSeq = false;
        bool ended = false;
        std::size_t frames = 0; ///< Records frames received (diagnostics)
    };

    Producer *producerFor(ConnId conn);
    void quarantine(const std::string &message, const Emit &emit);
    void parseRecords(Producer &producer, const std::string &payload,
                      const Emit &emit);
    void releaseMerged(const Emit &emit);
    void ingest(const trace::Record &rec, const Emit &emit);
    void closeEpoch(const Emit &emit);
    void maybeFinalize(const Emit &emit);
    void finalize(const Emit &emit);
    std::size_t pendingBytes() const;
    void broadcast(FrameType type, const std::string &payload,
                   const Emit &emit);

    std::string runId_;
    SessionOptions options_;
    SessionStats stats_;
    std::string errorMessage_; ///< set when quarantined

    trace::TraceStore store_;
    std::unique_ptr<hb::HbGraph> graph_;

    std::vector<Producer> producers_;
    int expectedProducers_ = 0; ///< from the first Hello
    int endedProducers_ = 0;

    /// @{ @name Epoch-windowed online detection state
    /** The shared epoch/index machinery (detect::StreamingDetector);
     *  the session keeps only the wire-level concerns: candidate
     *  deduplication and frame formatting. */
    detect::StreamingDetector streaming_;
    /** (variable, unordered callstack pair) keys already emitted
     *  online, all interned SymIds (the pool interner is bijective,
     *  so id equality is text equality and the dedup decisions match
     *  the old string keys exactly) — the hot path never builds a
     *  string for a pair it has already reported, and the key doubles
     *  as the StreamingDetector pre-filter that skips the
     *  happens-before query for such pairs altogether. */
    std::unordered_map<trace::SymId, std::unordered_set<std::uint64_t>>
        emitted_;
    /// @}

    /** Records buffered across all producers' reorder queues,
     *  maintained incrementally so the high-water bookkeeping costs
     *  O(1) per frame instead of a scan over producers. */
    std::size_t pendingRecords_ = 0;
};

} // namespace dcatch::serve

#endif // DCATCH_SERVE_SESSION_HH
