/**
 * @file
 * dcatchd wire protocol: length-prefixed frames carrying the existing
 * trace line format (docs/serve.md).
 *
 * A frame on the wire is
 *
 *     [u32 LE length][u8 type][payload: length-1 bytes]
 *
 * where `length` counts the type byte plus the payload.  Client->server
 * frames drive a session; server->client frames deliver online
 * candidates, the final report, and structured errors.  Payloads are
 * plain text: trace records travel in exactly the `Record::toLine()`
 * grammar, one line per record, so a recorded trace directory can be
 * streamed byte-for-byte.
 *
 * Client -> server:
 *   Hello      "v1 <producers> <runId>" — join (or open) the session
 *              `runId`, which finalizes after `producers` End frames.
 *              Every producer of one run must announce the same count.
 *   QueueMeta  "<node> <0|1 singleConsumer> <queueId>"
 *   ThreadMeta "<thread> <node> <0|1 handler> <name>"
 *   Records    newline-separated Record::toLine() lines; sequence
 *              numbers must ascend within one producer's stream.
 *   End        empty payload — this producer is done.
 *
 * Server -> client:
 *   Candidate  one provisional online candidate (epoch-windowed
 *              detection; a preview, not the authoritative report)
 *   Report     the final canonical candidate report, byte-identical
 *              to the batch pipeline's trace-analysis stage
 *   Error      structured per-session error; the session is
 *              quarantined (drained but no longer analyzed)
 */

#ifndef DCATCH_SERVE_WIRE_HH
#define DCATCH_SERVE_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcatch::serve {

/** Frame type tag (the byte after the length prefix). */
enum class FrameType : unsigned char {
    // client -> server
    Hello = 'H',
    QueueMeta = 'Q',
    ThreadMeta = 'T',
    Records = 'R',
    End = 'E',
    // server -> client
    Candidate = 'c',
    Report = 'r',
    Error = 'e',
};

/** Name of a frame type (diagnostics). */
const char *frameTypeName(FrameType type);

/** True for the tags a client is allowed to send. */
bool isClientFrame(FrameType type);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/** Upper bound on `length`; larger prefixes poison the connection
 *  (a desynchronized or hostile stream, not a big batch — clients
 *  chunk records far below this). */
inline constexpr std::uint32_t kMaxFrameLength = 64u << 20;

/** Encode one frame (length prefix + type + payload). */
std::string encodeFrame(FrameType type, std::string_view payload);

/** Parsed Hello payload. */
struct Hello
{
    std::string runId;
    int producers = 0;
};

/** Hello payload text for @p hello. */
std::string encodeHello(const Hello &hello);

/** Strict Hello parse. @return false with @p error set on defect. */
bool parseHello(std::string_view payload, Hello &out, std::string *error);

/**
 * Incremental frame decoder for one connection's byte stream.
 *
 * Single-threaded per connection: feed() whatever chunk arrived and
 * collect complete frames.  A framing violation (length 0 or over
 * kMaxFrameLength) is unrecoverable — the stream has lost alignment —
 * so feed() returns false and the connection must be closed.
 */
class FrameReader
{
  public:
    /**
     * Consume @p size bytes, appending complete frames to @p out.
     * @return false on a framing violation (@p error describes it);
     *         the reader is then poisoned and keeps returning false.
     */
    bool feed(const char *data, std::size_t size,
              std::vector<Frame> &out, std::string *error = nullptr);

    /** Bytes buffered awaiting a complete frame. */
    std::size_t pendingBytes() const { return buffer_.size(); }

  private:
    std::string buffer_;
    bool poisoned_ = false;
};

} // namespace dcatch::serve

#endif // DCATCH_SERVE_WIRE_HH
