#include "serve/session.hh"

#include <algorithm>
#include <tuple>

#include "common/logging.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"

namespace dcatch::serve {

std::string
canonicalReport(const std::string &runId, std::size_t records,
                const std::vector<detect::Candidate> &candidates)
{
    std::string out = strprintf(
        "dcatch-report run=%s records=%zu candidates=%zu\n",
        runId.c_str(), records, candidates.size());
    for (const detect::Candidate &c : candidates)
        out += strprintf("%s|%d|%s|%s|%d|%d|%s|%s\n", c.var.c_str(),
                         c.dynamicPairs, c.a.site.c_str(),
                         c.b.site.c_str(), c.a.vertex, c.b.vertex,
                         c.a.callstack.c_str(), c.b.callstack.c_str());
    return out;
}

Session::Session(std::string runId, SessionOptions options)
    : runId_(std::move(runId)), options_(options)
{
    if (options_.window == 0)
        options_.window = 1;
    if (options_.retainEpochs < 1)
        options_.retainEpochs = 1;
    graph_ = hb::HbGraph::streaming(store_, hb::HbGraph::Options());
}

Session::~Session() = default;

Session::Producer *
Session::producerFor(ConnId conn)
{
    for (Producer &producer : producers_)
        if (producer.conn == conn)
            return &producer;
    return nullptr;
}

void
Session::broadcast(FrameType type, const std::string &payload,
                   const Emit &emit)
{
    for (const Producer &producer : producers_)
        emit(producer.conn, type, payload);
}

void
Session::quarantine(const std::string &message, const Emit &emit)
{
    if (stats_.quarantined || stats_.finished)
        return;
    stats_.quarantined = true;
    errorMessage_ = message;
    DCATCH_WARN() << "session " << runId_ << " quarantined: "
                  << message;
    // Analysis stops: drop the reorder buffers and the online index,
    // keep producer bookkeeping so the run still drains to finished.
    for (Producer &producer : producers_)
        producer.pending.clear();
    onlineIndex_.clear();
    epochAccesses_.clear();
    graph_.reset();
    broadcast(FrameType::Error, errorMessage_, emit);
}

void
Session::handle(ConnId conn, const Frame &frame, const Emit &emit)
{
    ++stats_.frames;
    if (stats_.finished) {
        ++stats_.droppedFrames;
        return;
    }
    if (!isClientFrame(frame.type)) {
        quarantine(strprintf("%s: producer %llu sent server-side "
                             "frame type 0x%02x",
                             runId_.c_str(),
                             static_cast<unsigned long long>(conn),
                             static_cast<unsigned>(frame.type)),
                   emit);
        return;
    }

    if (frame.type == FrameType::Hello) {
        // Quarantine broadcasts only to joined producers; a conn whose
        // own Hello is the defect must be told directly.
        auto reject = [&](const std::string &message) {
            quarantine(message, emit);
            if (producerFor(conn) == nullptr)
                emit(conn, FrameType::Error, errorMessage_);
        };
        Hello hello;
        std::string why;
        if (!parseHello(frame.payload, hello, &why)) {
            reject(strprintf("%s: producer %llu: %s", runId_.c_str(),
                             static_cast<unsigned long long>(conn),
                             why.c_str()));
            return;
        }
        if (producerFor(conn) != nullptr) {
            quarantine(strprintf("%s: producer %llu sent a second "
                                 "Hello", runId_.c_str(),
                                 static_cast<unsigned long long>(conn)),
                       emit);
            return;
        }
        if (expectedProducers_ == 0) {
            expectedProducers_ = hello.producers;
        } else if (expectedProducers_ != hello.producers) {
            reject(
                strprintf("%s: producer %llu announced %d producers "
                          "but the session opened with %d",
                          runId_.c_str(),
                          static_cast<unsigned long long>(conn),
                          hello.producers, expectedProducers_));
            return;
        }
        if (static_cast<int>(producers_.size()) >= expectedProducers_) {
            reject(
                strprintf("%s: producer %llu is one more than the %d "
                          "announced", runId_.c_str(),
                          static_cast<unsigned long long>(conn),
                          expectedProducers_));
            return;
        }
        Producer producer;
        producer.conn = conn;
        producers_.push_back(producer);
        // A producer joining a poisoned run learns immediately.
        if (stats_.quarantined)
            emit(conn, FrameType::Error, errorMessage_);
        return;
    }

    Producer *producer = producerFor(conn);
    if (producer == nullptr) {
        quarantine(strprintf("%s: producer %llu sent %s before Hello",
                             runId_.c_str(),
                             static_cast<unsigned long long>(conn),
                             frameTypeName(frame.type)),
                   emit);
        return;
    }

    if (frame.type == FrameType::End) {
        if (producer->ended) {
            quarantine(strprintf("%s: producer %llu sent a second End",
                                 runId_.c_str(),
                                 static_cast<unsigned long long>(conn)),
                       emit);
            return;
        }
        producer->ended = true;
        ++endedProducers_;
        if (!stats_.quarantined)
            releaseMerged(emit);
        maybeFinalize(emit);
        return;
    }

    if (stats_.quarantined) {
        ++stats_.droppedFrames;
        return;
    }

    switch (frame.type) {
      case FrameType::QueueMeta: {
        int node = 0, single = 0, consumed = 0;
        char queue_id[1] = {};
        (void)queue_id;
        // "<node> <0|1> <queueId>", queueId is the rest of the line.
        if (std::sscanf(frame.payload.c_str(), "%d %d %n", &node,
                        &single, &consumed) != 2 ||
            consumed <= 0 ||
            static_cast<std::size_t>(consumed) >=
                frame.payload.size() ||
            (single != 0 && single != 1)) {
            quarantine(strprintf("%s: producer %llu sent malformed "
                                 "QueueMeta: %s", runId_.c_str(),
                                 static_cast<unsigned long long>(conn),
                                 frame.payload.c_str()),
                       emit);
            return;
        }
        trace::QueueMeta meta;
        meta.queueId = frame.payload.substr(
            static_cast<std::size_t>(consumed));
        meta.node = node;
        meta.singleConsumer = single == 1;
        store_.noteQueue(meta);
        return;
      }
      case FrameType::ThreadMeta: {
        int thread = 0, node = 0, handler = 0, consumed = 0;
        // "<thread> <node> <0|1> <name>", name may be empty.
        if (std::sscanf(frame.payload.c_str(), "%d %d %d%n", &thread,
                        &node, &handler, &consumed) != 3 ||
            (handler != 0 && handler != 1)) {
            quarantine(strprintf("%s: producer %llu sent malformed "
                                 "ThreadMeta: %s", runId_.c_str(),
                                 static_cast<unsigned long long>(conn),
                                 frame.payload.c_str()),
                       emit);
            return;
        }
        trace::ThreadMeta meta;
        meta.thread = thread;
        meta.node = node;
        meta.handlerThread = handler == 1;
        if (static_cast<std::size_t>(consumed) <
            frame.payload.size())
            meta.name = frame.payload.substr(
                static_cast<std::size_t>(consumed) + 1);
        store_.noteThread(meta);
        return;
      }
      case FrameType::Records:
        ++producer->frames;
        parseRecords(*producer, frame.payload, emit);
        if (!stats_.quarantined)
            releaseMerged(emit);
        return;
      default:
        return; // unreachable: client frames are covered above
    }
}

void
Session::disconnect(ConnId conn, const Emit &emit)
{
    Producer *producer = producerFor(conn);
    if (producer == nullptr || producer->ended || stats_.finished)
        return;
    // An implicit End keeps the run draining; the final report is
    // still correct for everything the producer delivered.
    DCATCH_WARN() << "session " << runId_ << ": producer " << conn
                  << " disconnected without End";
    producer->ended = true;
    ++endedProducers_;
    if (!stats_.quarantined)
        releaseMerged(emit);
    maybeFinalize(emit);
}

void
Session::parseRecords(Producer &producer, const std::string &payload,
                      const Emit &emit)
{
    std::size_t line_no = 0;
    std::size_t begin = 0;
    while (begin < payload.size()) {
        std::size_t end = payload.find('\n', begin);
        if (end == std::string::npos)
            end = payload.size();
        std::string line = payload.substr(begin, end - begin);
        begin = end + 1;
        if (line.empty())
            continue;
        ++line_no;
        trace::Record rec;
        std::string why;
        if (!trace::Record::fromLine(line, store_.symbols(), rec,
                                     &why)) {
            // Same shape as TraceParseError out of loadFromDirectory,
            // with producer/frame/line wire coordinates standing in
            // for the file path.
            quarantine(strprintf(
                           "%s: producer %llu frame %zu line %zu: "
                           "malformed trace line (%s): %s",
                           runId_.c_str(),
                           static_cast<unsigned long long>(
                               producer.conn),
                           producer.frames, line_no, why.c_str(),
                           line.c_str()),
                       emit);
            return;
        }
        if (producer.haveSeq && rec.seq <= producer.lastSeq) {
            quarantine(strprintf(
                           "%s: producer %llu frame %zu line %zu: "
                           "out-of-order sequence number %llu (after "
                           "%llu)",
                           runId_.c_str(),
                           static_cast<unsigned long long>(
                               producer.conn),
                           producer.frames, line_no,
                           static_cast<unsigned long long>(rec.seq),
                           static_cast<unsigned long long>(
                               producer.lastSeq)),
                       emit);
            return;
        }
        producer.lastSeq = rec.seq;
        producer.haveSeq = true;
        producer.pending.push_back(rec);
    }
    stats_.maxPendingBytes =
        std::max(stats_.maxPendingBytes, pendingBytes());
}

std::size_t
Session::pendingBytes() const
{
    std::size_t bytes = 0;
    for (const Producer &producer : producers_)
        bytes += producer.pending.size() * sizeof(trace::Record);
    return bytes;
}

std::size_t
Session::onlineIndexBytes() const
{
    std::size_t bytes = epochAccesses_.size() *
                        sizeof(std::tuple<trace::SymId, int, bool>);
    for (const auto &[var, list] : onlineIndex_)
        bytes += sizeof(var) + list.size() * sizeof(OnlineAccess);
    return bytes;
}

void
Session::releaseMerged(const Emit &emit)
{
    // Nothing can merge until every announced producer has joined:
    // an unconnected producer's future records may carry any
    // sequence number.
    if (expectedProducers_ == 0 ||
        static_cast<int>(producers_.size()) < expectedProducers_)
        return;

    bool all_ended = endedProducers_ == expectedProducers_;
    for (;;) {
        // Watermark: every active producer's records from here on
        // have seq > its lastSeq, so anything buffered at or below
        // the minimum is safe to merge in global order.
        std::uint64_t watermark = 0;
        bool have_watermark = all_ended;
        if (!all_ended) {
            bool first = true;
            for (const Producer &producer : producers_) {
                if (producer.ended)
                    continue;
                if (!producer.haveSeq)
                    return; // silent producer pins the watermark
                if (first || producer.lastSeq < watermark)
                    watermark = producer.lastSeq;
                first = false;
            }
            have_watermark = !first;
        }
        if (!have_watermark)
            return;

        Producer *next = nullptr;
        for (Producer &producer : producers_) {
            if (producer.pending.empty())
                continue;
            if (next == nullptr ||
                producer.pending.front().seq <
                    next->pending.front().seq)
                next = &producer;
        }
        if (next == nullptr)
            return;
        if (!all_ended && next->pending.front().seq > watermark)
            return;
        trace::Record rec = next->pending.front();
        next->pending.pop_front();
        ingest(rec, emit);
        if (stats_.quarantined)
            return;
    }
}

void
Session::ingest(const trace::Record &rec, const Emit &emit)
{
    store_.append(rec);
    ++stats_.records;
    int before = static_cast<int>(graph_->size());
    graph_->append(rec);
    bool kept = static_cast<int>(graph_->size()) > before;
    if (kept && rec.isMemoryAccess()) {
        bool is_write = rec.type == trace::RecordType::MemWrite;
        epochAccesses_.emplace_back(rec.id, before, is_write);
        onlineIndex_[rec.id].push_back(
            {before, currentEpoch_, is_write});
    }
    if (++releasedInEpoch_ >= options_.window)
        closeEpoch(emit);
}

void
Session::closeEpoch(const Emit &emit)
{
    graph_->flush();
    if (graph_->oom()) {
        quarantine(strprintf("%s: analysis memory budget exceeded at "
                             "record %zu", runId_.c_str(),
                             stats_.records),
                   emit);
        return;
    }

    // Test the closed epoch's accesses against everything retained.
    // Each access stops at itself in the per-variable list, so every
    // (earlier, later) pair — including same-epoch pairs — is tested
    // exactly once.
    for (const auto &[var, vertex, is_write] : epochAccesses_) {
        const auto it = onlineIndex_.find(var);
        if (it == onlineIndex_.end())
            continue;
        for (const OnlineAccess &other : it->second) {
            if (other.vertex == vertex)
                break;
            if (!is_write && !other.isWrite)
                continue;
            if (!graph_->concurrent(other.vertex, vertex))
                continue;
            int a = other.vertex, b = vertex;
            std::string cs_a(graph_->callstack(a));
            std::string cs_b(graph_->callstack(b));
            if (cs_b < cs_a)
                std::swap(cs_a, cs_b);
            std::string key = std::string(graph_->id(b)) + '\x1f' +
                              cs_a + '\x1f' + cs_b;
            if (!emitted_.insert(std::move(key)).second)
                continue;
            ++stats_.onlineCandidates;
            broadcast(FrameType::Candidate,
                      strprintf("epoch=%u var=%s %s <-> %s",
                                currentEpoch_,
                                std::string(graph_->id(b)).c_str(),
                                std::string(graph_->site(a)).c_str(),
                                std::string(graph_->site(b)).c_str()),
                      emit);
        }
    }

    evict(currentEpoch_);
    stats_.maxOnlineIndexBytes =
        std::max(stats_.maxOnlineIndexBytes, onlineIndexBytes());
    ++stats_.epochsClosed;
    ++currentEpoch_;
    releasedInEpoch_ = 0;
    epochAccesses_.clear();
}

void
Session::evict(std::uint32_t closedEpoch)
{
    // Keep accesses from epochs > closedEpoch - retainEpochs; older
    // ones have been tested against every window they overlap.
    if (closedEpoch + 1 <
        static_cast<std::uint32_t>(options_.retainEpochs))
        return;
    std::uint32_t min_keep =
        closedEpoch + 1 -
        static_cast<std::uint32_t>(options_.retainEpochs);
    for (auto it = onlineIndex_.begin(); it != onlineIndex_.end();) {
        std::deque<OnlineAccess> &list = it->second;
        while (!list.empty() && list.front().epoch < min_keep) {
            list.pop_front();
            ++stats_.evictedAccesses;
        }
        if (list.empty())
            it = onlineIndex_.erase(it);
        else
            ++it;
    }
}

void
Session::maybeFinalize(const Emit &emit)
{
    if (stats_.finished)
        return;
    if (stats_.quarantined) {
        // Every producer already holds the Error frame.  Don't wait
        // for announced-but-never-joined producers (they may never
        // come); the run drains to reapable once everyone who did
        // join has ended.
        if (!producers_.empty() &&
            endedProducers_ == static_cast<int>(producers_.size()))
            stats_.finished = true;
        return;
    }
    if (expectedProducers_ == 0 ||
        static_cast<int>(producers_.size()) < expectedProducers_ ||
        endedProducers_ < expectedProducers_)
        return;
    finalize(emit);
}

void
Session::finalize(const Emit &emit)
{
    graph_->finishStream();
    stats_.streamExact = graph_->streamExact();
    if (graph_->oom()) {
        quarantine(strprintf("%s: analysis memory budget exceeded "
                             "finalizing %zu records", runId_.c_str(),
                             stats_.records),
                   emit);
        stats_.finished = true;
        return;
    }

    detect::RaceDetector detector;
    std::vector<detect::Candidate> candidates;
    if (stats_.streamExact) {
        candidates = detector.detect(*graph_);
    } else {
        // A wrong ThreadMeta promise over-ordered a thread; fall back
        // to the batch build over the accumulated store, which is the
        // authoritative semantics by construction.
        hb::HbGraph batch(store_, hb::HbGraph::Options());
        if (batch.oom()) {
            quarantine(strprintf("%s: analysis memory budget exceeded "
                                 "rebuilding %zu records",
                                 runId_.c_str(), stats_.records),
                       emit);
            stats_.finished = true;
            return;
        }
        candidates = detector.detect(batch);
    }

    broadcast(FrameType::Report,
              canonicalReport(runId_, stats_.records, candidates),
              emit);
    stats_.finished = true;
    // Free the heavy state; only the stats survive until reap.
    graph_.reset();
    onlineIndex_.clear();
    emitted_.clear();
    epochAccesses_.clear();
}

} // namespace dcatch::serve
