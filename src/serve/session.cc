#include "serve/session.hh"

#include <algorithm>
#include <limits>
#include <string_view>
#include <tuple>

#include "common/logging.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"

namespace dcatch::serve {

std::string
canonicalReport(const std::string &runId, std::size_t records,
                const std::vector<detect::Candidate> &candidates)
{
    std::string out = strprintf(
        "dcatch-report run=%s records=%zu candidates=%zu\n",
        runId.c_str(), records, candidates.size());
    for (const detect::Candidate &c : candidates)
        out += strprintf("%s|%d|%s|%s|%d|%d|%s|%s\n", c.var.c_str(),
                         c.dynamicPairs, c.a.site.c_str(),
                         c.b.site.c_str(), c.a.vertex, c.b.vertex,
                         c.a.callstack.c_str(), c.b.callstack.c_str());
    return out;
}

Session::Session(std::string runId, SessionOptions options)
    : runId_(std::move(runId)), options_(options),
      streaming_({options.window, options.retainEpochs})
{
    if (options_.window == 0)
        options_.window = 1;
    if (options_.retainEpochs < 1)
        options_.retainEpochs = 1;
    if (options_.batch == 0)
        options_.batch = 1;
    graph_ = hb::HbGraph::streaming(store_, hb::HbGraph::Options());
}

Session::~Session() = default;

Session::Producer *
Session::producerFor(ConnId conn)
{
    for (Producer &producer : producers_)
        if (producer.conn == conn)
            return &producer;
    return nullptr;
}

void
Session::broadcast(FrameType type, const std::string &payload,
                   const Emit &emit)
{
    for (const Producer &producer : producers_)
        emit(producer.conn, type, payload);
}

void
Session::quarantine(const std::string &message, const Emit &emit)
{
    if (stats_.quarantined || stats_.finished)
        return;
    stats_.quarantined = true;
    errorMessage_ = message;
    DCATCH_WARN() << "session " << runId_ << " quarantined: "
                  << message;
    // Analysis stops: drop the reorder buffers and the online index,
    // keep producer bookkeeping so the run still drains to finished.
    for (Producer &producer : producers_)
        producer.pending.clear();
    pendingRecords_ = 0;
    streaming_.reset();
    graph_.reset();
    broadcast(FrameType::Error, errorMessage_, emit);
}

void
Session::handle(ConnId conn, const Frame &frame, const Emit &emit)
{
    ++stats_.frames;
    if (stats_.finished) {
        ++stats_.droppedFrames;
        return;
    }
    if (!isClientFrame(frame.type)) {
        quarantine(strprintf("%s: producer %llu sent server-side "
                             "frame type 0x%02x",
                             runId_.c_str(),
                             static_cast<unsigned long long>(conn),
                             static_cast<unsigned>(frame.type)),
                   emit);
        return;
    }

    if (frame.type == FrameType::Hello) {
        // Quarantine broadcasts only to joined producers; a conn whose
        // own Hello is the defect must be told directly.
        auto reject = [&](const std::string &message) {
            quarantine(message, emit);
            if (producerFor(conn) == nullptr)
                emit(conn, FrameType::Error, errorMessage_);
        };
        Hello hello;
        std::string why;
        if (!parseHello(frame.payload, hello, &why)) {
            reject(strprintf("%s: producer %llu: %s", runId_.c_str(),
                             static_cast<unsigned long long>(conn),
                             why.c_str()));
            return;
        }
        if (producerFor(conn) != nullptr) {
            quarantine(strprintf("%s: producer %llu sent a second "
                                 "Hello", runId_.c_str(),
                                 static_cast<unsigned long long>(conn)),
                       emit);
            return;
        }
        if (expectedProducers_ == 0) {
            expectedProducers_ = hello.producers;
        } else if (expectedProducers_ != hello.producers) {
            reject(
                strprintf("%s: producer %llu announced %d producers "
                          "but the session opened with %d",
                          runId_.c_str(),
                          static_cast<unsigned long long>(conn),
                          hello.producers, expectedProducers_));
            return;
        }
        if (static_cast<int>(producers_.size()) >= expectedProducers_) {
            reject(
                strprintf("%s: producer %llu is one more than the %d "
                          "announced", runId_.c_str(),
                          static_cast<unsigned long long>(conn),
                          expectedProducers_));
            return;
        }
        Producer producer;
        producer.conn = conn;
        producers_.push_back(producer);
        // A producer joining a poisoned run learns immediately.
        if (stats_.quarantined)
            emit(conn, FrameType::Error, errorMessage_);
        return;
    }

    Producer *producer = producerFor(conn);
    if (producer == nullptr) {
        quarantine(strprintf("%s: producer %llu sent %s before Hello",
                             runId_.c_str(),
                             static_cast<unsigned long long>(conn),
                             frameTypeName(frame.type)),
                   emit);
        return;
    }

    if (frame.type == FrameType::End) {
        if (producer->ended) {
            quarantine(strprintf("%s: producer %llu sent a second End",
                                 runId_.c_str(),
                                 static_cast<unsigned long long>(conn)),
                       emit);
            return;
        }
        producer->ended = true;
        ++endedProducers_;
        if (!stats_.quarantined)
            releaseMerged(emit);
        maybeFinalize(emit);
        return;
    }

    if (stats_.quarantined) {
        ++stats_.droppedFrames;
        return;
    }

    switch (frame.type) {
      case FrameType::QueueMeta: {
        int node = 0, single = 0, consumed = 0;
        char queue_id[1] = {};
        (void)queue_id;
        // "<node> <0|1> <queueId>", queueId is the rest of the line.
        if (std::sscanf(frame.payload.c_str(), "%d %d %n", &node,
                        &single, &consumed) != 2 ||
            consumed <= 0 ||
            static_cast<std::size_t>(consumed) >=
                frame.payload.size() ||
            (single != 0 && single != 1)) {
            quarantine(strprintf("%s: producer %llu sent malformed "
                                 "QueueMeta: %s", runId_.c_str(),
                                 static_cast<unsigned long long>(conn),
                                 frame.payload.c_str()),
                       emit);
            return;
        }
        trace::QueueMeta meta;
        meta.queueId = frame.payload.substr(
            static_cast<std::size_t>(consumed));
        meta.node = node;
        meta.singleConsumer = single == 1;
        store_.noteQueue(meta);
        return;
      }
      case FrameType::ThreadMeta: {
        int thread = 0, node = 0, handler = 0, consumed = 0;
        // "<thread> <node> <0|1> <name>", name may be empty.
        if (std::sscanf(frame.payload.c_str(), "%d %d %d%n", &thread,
                        &node, &handler, &consumed) != 3 ||
            (handler != 0 && handler != 1)) {
            quarantine(strprintf("%s: producer %llu sent malformed "
                                 "ThreadMeta: %s", runId_.c_str(),
                                 static_cast<unsigned long long>(conn),
                                 frame.payload.c_str()),
                       emit);
            return;
        }
        trace::ThreadMeta meta;
        meta.thread = thread;
        meta.node = node;
        meta.handlerThread = handler == 1;
        if (static_cast<std::size_t>(consumed) <
            frame.payload.size())
            meta.name = frame.payload.substr(
                static_cast<std::size_t>(consumed) + 1);
        store_.noteThread(meta);
        return;
      }
      case FrameType::Records:
        ++producer->frames;
        parseRecords(*producer, frame.payload, emit);
        if (!stats_.quarantined)
            releaseMerged(emit);
        return;
      default:
        return; // unreachable: client frames are covered above
    }
}

void
Session::disconnect(ConnId conn, const Emit &emit)
{
    Producer *producer = producerFor(conn);
    if (producer == nullptr || producer->ended || stats_.finished)
        return;
    // An implicit End keeps the run draining; the final report is
    // still correct for everything the producer delivered.
    DCATCH_WARN() << "session " << runId_ << ": producer " << conn
                  << " disconnected without End";
    producer->ended = true;
    ++endedProducers_;
    if (!stats_.quarantined)
        releaseMerged(emit);
    maybeFinalize(emit);
}

void
Session::parseRecords(Producer &producer, const std::string &payload,
                      const Emit &emit)
{
    // Zero-copy scan: each line and its symbol fields are views into
    // the frame payload; no per-line std::string is materialised on
    // the success path.  Consecutive records overwhelmingly repeat
    // the same site / variable / callstack text, so a one-entry cache
    // per field turns three interner probes per line into one probe
    // per run of equal texts (the views stay valid frame-wide).
    struct Cached
    {
        std::string_view text;
        trace::SymId id = 0;
        bool valid = false;
    };
    Cached site_cache, id_cache, cs_cache;
    trace::SymbolPool &pool = store_.symbols();
    auto intern = [&pool](Cached &cache, std::string_view text) {
        if (!cache.valid || cache.text != text) {
            cache.id = pool.intern(text);
            cache.text = text;
            cache.valid = true;
        }
        return cache.id;
    };

    std::string_view text = payload;
    std::size_t line_no = 0;
    std::size_t begin = 0;
    while (begin < text.size()) {
        std::size_t end = text.find('\n', begin);
        if (end == std::string_view::npos)
            end = text.size();
        std::string_view line = text.substr(begin, end - begin);
        begin = end + 1;
        if (line.empty())
            continue;
        ++line_no;
        trace::Record rec;
        std::string_view site, id, callstack;
        std::string why;
        if (!trace::Record::scanLine(line, rec, site, id, callstack,
                                     &why)) {
            // Same shape as TraceParseError out of loadFromDirectory,
            // with producer/frame/line wire coordinates standing in
            // for the file path.
            quarantine(strprintf(
                           "%s: producer %llu frame %zu line %zu: "
                           "malformed trace line (%s): %s",
                           runId_.c_str(),
                           static_cast<unsigned long long>(
                               producer.conn),
                           producer.frames, line_no, why.c_str(),
                           std::string(line).c_str()),
                       emit);
            return;
        }
        if (producer.haveSeq && rec.seq <= producer.lastSeq) {
            quarantine(strprintf(
                           "%s: producer %llu frame %zu line %zu: "
                           "out-of-order sequence number %llu (after "
                           "%llu)",
                           runId_.c_str(),
                           static_cast<unsigned long long>(
                               producer.conn),
                           producer.frames, line_no,
                           static_cast<unsigned long long>(rec.seq),
                           static_cast<unsigned long long>(
                               producer.lastSeq)),
                       emit);
            return;
        }
        rec.site = intern(site_cache, site);
        rec.id = intern(id_cache, id);
        rec.callstack = intern(cs_cache, callstack);
        producer.lastSeq = rec.seq;
        producer.haveSeq = true;
        producer.pending.push_back(rec);
        ++pendingRecords_;
    }
    stats_.maxPendingBytes =
        std::max(stats_.maxPendingBytes, pendingBytes());
}

std::size_t
Session::pendingBytes() const
{
    return pendingRecords_ * sizeof(trace::Record);
}

void
Session::releaseMerged(const Emit &emit)
{
    // Nothing can merge until every announced producer has joined:
    // an unconnected producer's future records may carry any
    // sequence number.
    if (expectedProducers_ == 0 ||
        static_cast<int>(producers_.size()) < expectedProducers_)
        return;

    bool all_ended = endedProducers_ == expectedProducers_;

    // Watermark: every active producer's records from here on have
    // seq > its lastSeq, so anything buffered at or below the minimum
    // is safe to merge in global order.  lastSeq only advances while
    // parsing, never while releasing, so one computation covers the
    // whole call instead of one per released record.
    std::uint64_t watermark =
        std::numeric_limits<std::uint64_t>::max();
    if (!all_ended) {
        bool first = true;
        for (const Producer &producer : producers_) {
            if (producer.ended)
                continue;
            if (!producer.haveSeq)
                return; // silent producer pins the watermark
            if (first || producer.lastSeq < watermark)
                watermark = producer.lastSeq;
            first = false;
        }
        if (first)
            return;
    }

    for (;;) {
        // One k-way merge step picks the producer with the smallest
        // buffered head (ties to the earliest producer)...
        Producer *next = nullptr;
        std::uint64_t other_heads =
            std::numeric_limits<std::uint64_t>::max();
        for (Producer &producer : producers_) {
            if (producer.pending.empty())
                continue;
            std::uint64_t head = producer.pending.front().seq;
            if (next == nullptr || head < next->pending.front().seq) {
                if (next != nullptr)
                    other_heads = std::min(
                        other_heads, next->pending.front().seq);
                next = &producer;
            } else {
                other_heads = std::min(other_heads, head);
            }
        }
        if (next == nullptr || next->pending.front().seq > watermark)
            return;
        // ... then releases a whole run from it: after the head,
        // every buffered record strictly below the other producers'
        // heads (and at or below the watermark) merges next anyway,
        // so it can be drained without rescanning the producers.
        // `batch` caps the slice purely as amortization granularity;
        // the release order is identical for any value.
        std::size_t run = 0;
        do {
            trace::Record rec = next->pending.front();
            next->pending.pop_front();
            --pendingRecords_;
            ingest(rec, emit);
            if (stats_.quarantined)
                return;
            ++run;
        } while (run < options_.batch && !next->pending.empty() &&
                 next->pending.front().seq <= watermark &&
                 next->pending.front().seq < other_heads);
    }
}

void
Session::ingest(const trace::Record &rec, const Emit &emit)
{
    store_.append(rec);
    ++stats_.records;
    int before = static_cast<int>(graph_->size());
    graph_->append(rec);
    bool kept = static_cast<int>(graph_->size()) > before;
    if (kept && rec.isMemoryAccess())
        streaming_.noteAccess(rec.id, before,
                              rec.type == trace::RecordType::MemWrite);
    if (streaming_.noteRecord())
        closeEpoch(emit);
}

void
Session::closeEpoch(const Emit &emit)
{
    graph_->flush();
    if (graph_->oom()) {
        quarantine(strprintf("%s: analysis memory budget exceeded at "
                             "record %zu", runId_.c_str(),
                             stats_.records),
                   emit);
        return;
    }

    // The detector walks epoch-vs-retained pairs; the session turns
    // the raw concurrent pairs into deduplicated Candidate frames.
    // Dedup keys are interned ids, and double as the detector's
    // pre-filter: a pair whose key already produced a candidate would
    // be dropped after the happens-before query, so it is sound to
    // skip the query itself.
    auto pair_key = [this](int a, int b, trace::SymId *var) {
        const trace::Record &ra = graph_->record(a);
        const trace::Record &rb = graph_->record(b);
        *var = rb.id;
        std::uint64_t lo = std::min(ra.callstack, rb.callstack);
        std::uint64_t hi = std::max(ra.callstack, rb.callstack);
        return (hi << 32) | lo;
    };
    streaming_.closeEpoch(
        *graph_,
        [&](std::uint32_t epoch, int a, int b) {
            trace::SymId var = 0;
            std::uint64_t key = pair_key(a, b, &var);
            if (!emitted_[var].insert(key).second)
                return;
            ++stats_.onlineCandidates;
            broadcast(FrameType::Candidate,
                      strprintf("epoch=%u var=%s %s <-> %s", epoch,
                                std::string(graph_->id(b)).c_str(),
                                std::string(graph_->site(a)).c_str(),
                                std::string(graph_->site(b)).c_str()),
                      emit);
        },
        [&](int a, int b) {
            trace::SymId var = 0;
            std::uint64_t key = pair_key(a, b, &var);
            auto it = emitted_.find(var);
            return it != emitted_.end() &&
                   it->second.count(key) != 0;
        });

    const detect::StreamingDetector::Stats &s = streaming_.stats();
    stats_.epochsClosed = s.epochsClosed;
    stats_.evictedAccesses = s.evictedAccesses;
    stats_.maxOnlineIndexBytes =
        std::max(stats_.maxOnlineIndexBytes, s.maxIndexBytes);
}

void
Session::maybeFinalize(const Emit &emit)
{
    if (stats_.finished)
        return;
    if (stats_.quarantined) {
        // Every producer already holds the Error frame.  Don't wait
        // for announced-but-never-joined producers (they may never
        // come); the run drains to reapable once everyone who did
        // join has ended.
        if (!producers_.empty() &&
            endedProducers_ == static_cast<int>(producers_.size()))
            stats_.finished = true;
        return;
    }
    if (expectedProducers_ == 0 ||
        static_cast<int>(producers_.size()) < expectedProducers_ ||
        endedProducers_ < expectedProducers_)
        return;
    finalize(emit);
}

void
Session::finalize(const Emit &emit)
{
    graph_->finishStream();
    stats_.streamExact = graph_->streamExact();
    if (graph_->oom()) {
        quarantine(strprintf("%s: analysis memory budget exceeded "
                             "finalizing %zu records", runId_.c_str(),
                             stats_.records),
                   emit);
        stats_.finished = true;
        return;
    }

    detect::RaceDetector detector;
    std::vector<detect::Candidate> candidates;
    if (stats_.streamExact) {
        candidates = detector.detect(*graph_);
    } else {
        // A wrong ThreadMeta promise over-ordered a thread; fall back
        // to the batch build over the accumulated store, which is the
        // authoritative semantics by construction.
        hb::HbGraph batch(store_, hb::HbGraph::Options());
        if (batch.oom()) {
            quarantine(strprintf("%s: analysis memory budget exceeded "
                                 "rebuilding %zu records",
                                 runId_.c_str(), stats_.records),
                       emit);
            stats_.finished = true;
            return;
        }
        candidates = detector.detect(batch);
    }

    broadcast(FrameType::Report,
              canonicalReport(runId_, stats_.records, candidates),
              emit);
    stats_.finished = true;
    // Free the heavy state; only the stats survive until reap.
    graph_.reset();
    streaming_.reset();
    emitted_.clear();
}

} // namespace dcatch::serve
