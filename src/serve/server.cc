#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/util.hh"

namespace dcatch::serve {

bool
parseAddress(const std::string &text, Address &out, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    if (text.rfind("unix:", 0) == 0) {
        out.isUnix = true;
        out.path = text.substr(5);
        if (out.path.empty())
            return fail("unix address is missing a socket path");
        if (out.path.size() >= sizeof(sockaddr_un{}.sun_path))
            return fail(strprintf("unix socket path longer than %zu "
                                  "bytes",
                                  sizeof(sockaddr_un{}.sun_path) - 1));
        return true;
    }
    if (text.rfind("tcp:", 0) == 0) {
        std::string rest = text.substr(4);
        std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= rest.size())
            return fail("tcp address must be tcp:HOST:PORT");
        out.isUnix = false;
        out.host = rest.substr(0, colon);
        std::string port = rest.substr(colon + 1);
        try {
            std::size_t used = 0;
            long parsed = std::stol(port, &used);
            if (used != port.size())
                throw std::invalid_argument(port);
            if (parsed < 0 || parsed > 65535)
                return fail(strprintf("tcp port %ld out of range",
                                      parsed));
            out.port = static_cast<int>(parsed);
        } catch (const std::exception &) {
            return fail(strprintf("tcp port '%s' is not a number",
                                  port.c_str()));
        }
        return true;
    }
    return fail("address must start with unix: or tcp:");
}

namespace {

bool
resolveInet(const Address &address, sockaddr_in &sin,
            std::string *error)
{
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port =
        htons(static_cast<std::uint16_t>(address.port));
    std::string host =
        address.host == "localhost" ? "127.0.0.1" : address.host;
    if (inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
        if (error)
            *error = strprintf("cannot parse IPv4 host '%s'",
                               address.host.c_str());
        return false;
    }
    return true;
}

bool
fillUnix(const Address &address, sockaddr_un &sun, std::string *error)
{
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (address.path.size() >= sizeof(sun.sun_path)) {
        if (error)
            *error = "unix socket path too long";
        return false;
    }
    std::memcpy(sun.sun_path, address.path.c_str(),
                address.path.size() + 1);
    return true;
}

} // namespace

int
connectTo(const Address &address, std::string *error)
{
    int fd = -1;
    if (address.isUnix) {
        sockaddr_un sun;
        if (!fillUnix(address, sun, error))
            return -1;
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<sockaddr *>(&sun),
                      sizeof(sun)) != 0) {
            ::close(fd);
            fd = -1;
        }
    } else {
        sockaddr_in sin;
        if (!resolveInet(address, sin, error))
            return -1;
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<sockaddr *>(&sin),
                      sizeof(sin)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }
    if (fd < 0 && error && error->empty())
        *error = strprintf("connect failed: %s", std::strerror(errno));
    return fd;
}

Server::Server(ServeCore &core, const Address &address)
    : core_(core), address_(address)
{
    std::string error;
    if (address_.isUnix) {
        ::unlink(address_.path.c_str()); // stale socket from a crash
        sockaddr_un sun;
        if (!fillUnix(address_, sun, &error))
            throw std::runtime_error(error);
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0 ||
            ::bind(listenFd_, reinterpret_cast<sockaddr *>(&sun),
                   sizeof(sun)) != 0)
            throw std::runtime_error(strprintf(
                "cannot bind %s: %s", address_.path.c_str(),
                std::strerror(errno)));
    } else {
        sockaddr_in sin;
        if (!resolveInet(address_, sin, &error))
            throw std::runtime_error(error);
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        int one = 1;
        if (listenFd_ >= 0)
            ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
        if (listenFd_ < 0 ||
            ::bind(listenFd_, reinterpret_cast<sockaddr *>(&sin),
                   sizeof(sin)) != 0)
            throw std::runtime_error(strprintf(
                "cannot bind tcp:%s:%d: %s", address_.host.c_str(),
                address_.port, std::strerror(errno)));
        socklen_t len = sizeof(sin);
        if (::getsockname(listenFd_,
                          reinterpret_cast<sockaddr *>(&sin),
                          &len) == 0)
            address_.port = ntohs(sin.sin_port);
    }
    if (::listen(listenFd_, 64) != 0)
        throw std::runtime_error(strprintf("listen failed: %s",
                                           std::strerror(errno)));
}

Server::~Server()
{
    requestStop();
    for (std::thread &reader : readers_)
        if (reader.joinable())
            reader.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (address_.isUnix)
        ::unlink(address_.path.c_str());
}

std::string
Server::boundAddress() const
{
    if (address_.isUnix)
        return "unix:" + address_.path;
    return strprintf("tcp:%s:%d", address_.host.c_str(),
                     address_.port);
}

void
Server::run()
{
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        readers_.emplace_back([this, fd] { serveConnection(fd); });
    }
    for (std::thread &reader : readers_)
        if (reader.joinable())
            reader.join();
    readers_.clear();
}

void
Server::serveConnection(int fd)
{
    ConnId conn = core_.connect();
    char buffer[64 * 1024];
    bool open = true;
    auto send_frames = [&](const std::vector<Frame> &frames) {
        for (const Frame &frame : frames) {
            std::string bytes = encodeFrame(frame.type, frame.payload);
            std::size_t sent = 0;
            while (sent < bytes.size()) {
                ssize_t n = ::send(fd, bytes.data() + sent,
                                   bytes.size() - sent, MSG_NOSIGNAL);
                if (n <= 0)
                    return false;
                sent += static_cast<std::size_t>(n);
            }
        }
        return true;
    };

    while (open && !stop_.load(std::memory_order_acquire)) {
        pollfd pfd{fd, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 50);
        if (ready < 0)
            break;
        if (ready > 0) {
            ssize_t n = ::read(fd, buffer, sizeof(buffer));
            if (n <= 0)
                break; // peer closed (or error)
            if (!core_.deliver(conn, buffer, static_cast<std::size_t>(n)))
                open = false; // poisoned; flush the Error then close
        }
        if (!send_frames(core_.poll(conn)))
            break;
    }
    // Late frames (a Report racing the peer's shutdown) — best
    // effort; the peer may already be gone.
    send_frames(core_.pollWait(conn, std::chrono::milliseconds(50)));
    core_.disconnect(conn);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
}

} // namespace dcatch::serve
