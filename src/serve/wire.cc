#include "serve/wire.hh"

#include <cstring>

#include "common/util.hh"

namespace dcatch::serve {

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello: return "Hello";
      case FrameType::QueueMeta: return "QueueMeta";
      case FrameType::ThreadMeta: return "ThreadMeta";
      case FrameType::Records: return "Records";
      case FrameType::End: return "End";
      case FrameType::Candidate: return "Candidate";
      case FrameType::Report: return "Report";
      case FrameType::Error: return "Error";
    }
    return "?";
}

bool
isClientFrame(FrameType type)
{
    switch (type) {
      case FrameType::Hello:
      case FrameType::QueueMeta:
      case FrameType::ThreadMeta:
      case FrameType::Records:
      case FrameType::End:
        return true;
      default:
        return false;
    }
}

std::string
encodeFrame(FrameType type, std::string_view payload)
{
    std::uint32_t length =
        static_cast<std::uint32_t>(payload.size() + 1);
    std::string frame;
    frame.reserve(4 + length);
    frame.push_back(static_cast<char>(length & 0xff));
    frame.push_back(static_cast<char>((length >> 8) & 0xff));
    frame.push_back(static_cast<char>((length >> 16) & 0xff));
    frame.push_back(static_cast<char>((length >> 24) & 0xff));
    frame.push_back(static_cast<char>(type));
    frame.append(payload);
    return frame;
}

std::string
encodeHello(const Hello &hello)
{
    return strprintf("v1 %d %s", hello.producers, hello.runId.c_str());
}

bool
parseHello(std::string_view payload, Hello &out, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    if (payload.substr(0, 3) != "v1 ")
        return fail("unsupported Hello version (expected \"v1 ...\")");
    payload.remove_prefix(3);
    std::size_t space = payload.find(' ');
    if (space == std::string_view::npos)
        return fail("Hello missing producer count or run id");
    std::string count(payload.substr(0, space));
    std::string_view run = payload.substr(space + 1);
    try {
        std::size_t used = 0;
        long parsed = std::stol(count, &used);
        if (used != count.size())
            throw std::invalid_argument(count);
        if (parsed < 1 || parsed > (1 << 16))
            return fail(strprintf("Hello producer count %ld out of "
                                  "range [1, 65536]", parsed));
        out.producers = static_cast<int>(parsed);
    } catch (const std::exception &) {
        return fail(strprintf("Hello producer count '%s' is not a "
                              "number", count.c_str()));
    }
    if (run.empty())
        return fail("Hello run id is empty");
    out.runId = std::string(run);
    return true;
}

bool
FrameReader::feed(const char *data, std::size_t size,
                  std::vector<Frame> &out, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = "connection poisoned by an earlier framing error";
        return false;
    }
    buffer_.append(data, size);
    while (buffer_.size() >= 4) {
        const auto *p =
            reinterpret_cast<const unsigned char *>(buffer_.data());
        std::uint32_t length = static_cast<std::uint32_t>(p[0]) |
                               (static_cast<std::uint32_t>(p[1]) << 8) |
                               (static_cast<std::uint32_t>(p[2]) << 16) |
                               (static_cast<std::uint32_t>(p[3]) << 24);
        if (length == 0 || length > kMaxFrameLength) {
            poisoned_ = true;
            if (error)
                *error = strprintf(
                    "invalid frame length %u (must be in [1, %u])",
                    length, kMaxFrameLength);
            return false;
        }
        if (buffer_.size() < 4u + length)
            break;
        Frame frame;
        frame.type = static_cast<FrameType>(
            static_cast<unsigned char>(buffer_[4]));
        frame.payload.assign(buffer_, 5, length - 1);
        buffer_.erase(0, 4u + length);
        out.push_back(std::move(frame));
    }
    return true;
}

} // namespace dcatch::serve
