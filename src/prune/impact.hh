/**
 * @file
 * Static false-positive pruning (paper section 4).
 *
 * For a candidate (s, t), DCatch statically estimates whether s or t
 * can affect the execution of a failure instruction:
 *
 *  - local, intra-procedural: a failure instruction in s's function
 *    has control- or data-dependence on s;
 *  - local, inter-procedural (one level up): s flows into the return
 *    value of its function M, and a failure instruction in a caller
 *    of M depends on the call's result; or s writes a heap variable
 *    read by a one-level caller/callee on a path to a failure;
 *  - local, inter-procedural (one level down): s flows into a call's
 *    arguments and a failure instruction in the callee depends on its
 *    parameters;
 *  - distributed: an RPC function R encloses s, R's return value
 *    depends on s, and a failure instruction in the remote caller
 *    depends on the RPC result.
 *
 * A candidate with no impact found on either side is pruned.
 */

#ifndef DCATCH_PRUNE_IMPACT_HH
#define DCATCH_PRUNE_IMPACT_HH

#include <string>
#include <vector>

#include "detect/report.hh"
#include "model/program_model.hh"

namespace dcatch::prune {

/** Why an access was considered impactful (diagnostics). */
struct ImpactFinding
{
    bool hasImpact = false;
    std::string reason; ///< e.g. "local-intra:<failure site>"
    bool distributed = false;
};

/** Decision for one candidate. */
struct PruneDecision
{
    bool keep = false;
    ImpactFinding sideA, sideB;
};

/**
 * Which failure-instruction classes the pruner considers (paper
 * section 4.1: "This list is configurable, allowing future DCatch
 * extension to detect DCbugs with different failures").
 */
struct FailureSpec
{
    bool aborts = true;        ///< System.exit / abort invocations
    bool fatalLogs = true;     ///< Log::fatal / Log::error
    bool uncaughtThrows = true; ///< uncatchable exceptions
    bool loopExits = true;     ///< loop-exit instructions (hangs)

    /** Does the spec admit a failure instruction of this kind? */
    bool admits(const model::Inst &inst) const;
};

/** The static pruner, bound to one system's program model. */
class StaticPruner
{
  public:
    StaticPruner(const model::ProgramModel &model, FailureSpec spec)
        : model_(model), spec_(spec)
    {
    }

    explicit StaticPruner(const model::ProgramModel &model)
        : StaticPruner(model, FailureSpec())
    {
    }

    /** Impact analysis for one access site. */
    ImpactFinding analyzeSite(const std::string &site) const;

    /** Keep/prune decision for a candidate. */
    PruneDecision evaluate(const detect::Candidate &candidate) const;

    /** Filter a candidate list, keeping only impactful candidates. */
    std::vector<detect::Candidate>
    prune(const std::vector<detect::Candidate> &candidates) const;

  private:
    /** Failure instructions of @p fn admitted by the spec. */
    std::vector<const model::Inst *>
    admittedFailures(const model::Function &fn) const;

    const model::ProgramModel &model_;
    FailureSpec spec_;
};

} // namespace dcatch::prune

#endif // DCATCH_PRUNE_IMPACT_HH
