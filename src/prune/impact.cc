#include "prune/impact.hh"

#include "common/logging.hh"

namespace dcatch::prune {

using model::Function;
using model::Inst;
using model::InstKind;

bool
FailureSpec::admits(const Inst &inst) const
{
    if (inst.kind == InstKind::LoopExit)
        return loopExits;
    if (inst.kind != InstKind::Failure)
        return false;
    switch (inst.failureKind) {
      case sim::FailureKind::Abort: return aborts;
      case sim::FailureKind::FatalLog: return fatalLogs;
      case sim::FailureKind::UncaughtException: return uncaughtThrows;
      case sim::FailureKind::LoopHang: return loopExits;
    }
    return false;
}

std::vector<const Inst *>
StaticPruner::admittedFailures(const Function &fn) const
{
    std::vector<const Inst *> out;
    for (const Inst *inst : model_.failureInsts(fn))
        if (spec_.admits(*inst))
            out.push_back(inst);
    return out;
}

ImpactFinding
StaticPruner::analyzeSite(const std::string &site) const
{
    ImpactFinding finding;
    const Function *fn = model_.functionOf(site);
    if (!fn) {
        // Unmodelled sites have no discoverable impact — pruned, like
        // bytecode outside the analysed scope.
        return finding;
    }

    std::set<std::string> slice = model_.forwardSlice(*fn, site);

    // (1) Intra-procedural: failure instruction in the same function.
    for (const Inst *fi : admittedFailures(*fn)) {
        if (slice.count(fi->site)) {
            finding.hasImpact = true;
            finding.reason = "local-intra:" + fi->site;
            return finding;
        }
    }

    // (2) One level up via the return value; distributed when the
    //     call edge is an RPC invocation from another node.
    bool feeds_return = false;
    for (const std::string &src : fn->returnDeps)
        if (slice.count(src)) {
            feeds_return = true;
            break;
        }
    if (feeds_return) {
        for (const Inst *call : model_.callersOf(fn->name)) {
            const Function *caller = model_.functionOf(call->site);
            if (!caller)
                continue;
            std::set<std::string> call_slice =
                model_.forwardSlice(*caller, call->site);
            for (const Inst *fi : admittedFailures(*caller)) {
                if (call_slice.count(fi->site)) {
                    finding.hasImpact = true;
                    finding.distributed = call->rpcCall;
                    finding.reason =
                        (call->rpcCall ? "distributed:" : "local-caller:") +
                        fi->site;
                    return finding;
                }
            }
        }
    }

    // (3) One level up/down via heap variables: s writes H; a caller
    //     or callee reads H on a path to a failure instruction.
    const Inst *self = model_.inst(site);
    if (self && !self->heapVar.empty() && self->heapWrite) {
        std::vector<const Function *> neighbours;
        for (const Inst *call : model_.callersOf(fn->name))
            if (const Function *caller = model_.functionOf(call->site))
                neighbours.push_back(caller);
        for (const Inst &inst : fn->insts)
            if (inst.kind == InstKind::Call)
                if (const Function *callee = model_.function(inst.callee))
                    neighbours.push_back(callee);
        for (const Function *g : neighbours) {
            for (const Inst &read : g->insts) {
                if (read.heapVar != self->heapVar || read.heapWrite)
                    continue;
                std::set<std::string> read_slice =
                    model_.forwardSlice(*g, read.site);
                for (const Inst *fi : admittedFailures(*g)) {
                    if (read_slice.count(fi->site)) {
                        finding.hasImpact = true;
                        finding.reason = "heap:" + fi->site;
                        return finding;
                    }
                }
            }
        }
    }

    // (4) One level down via call parameters.
    for (const Inst &inst : fn->insts) {
        if (inst.kind != InstKind::Call || !slice.count(inst.site))
            continue;
        const Function *callee = model_.function(inst.callee);
        if (!callee)
            continue;
        std::set<std::string> param_slice =
            model_.forwardSlice(*callee, "$param");
        for (const Inst *fi : admittedFailures(*callee)) {
            if (param_slice.count(fi->site)) {
                finding.hasImpact = true;
                finding.reason = "local-callee:" + fi->site;
                return finding;
            }
        }
    }

    return finding;
}

PruneDecision
StaticPruner::evaluate(const detect::Candidate &candidate) const
{
    PruneDecision decision;
    decision.sideA = analyzeSite(candidate.a.site);
    decision.sideB = analyzeSite(candidate.b.site);
    decision.keep = decision.sideA.hasImpact || decision.sideB.hasImpact;
    return decision;
}

std::vector<detect::Candidate>
StaticPruner::prune(const std::vector<detect::Candidate> &candidates) const
{
    std::vector<detect::Candidate> kept;
    for (const detect::Candidate &cand : candidates) {
        PruneDecision decision = evaluate(cand);
        if (decision.keep) {
            kept.push_back(cand);
        } else {
            DCATCH_DEBUG() << "pruned (no failure impact): "
                           << cand.staticKey();
        }
    }
    return kept;
}

} // namespace dcatch::prune
