# Empty dependencies file for mini_systems_test.
# This may be replaced when dependencies are built.
