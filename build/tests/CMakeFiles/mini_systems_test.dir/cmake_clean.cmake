file(REMOVE_RECURSE
  "CMakeFiles/mini_systems_test.dir/apps/mini_systems_test.cc.o"
  "CMakeFiles/mini_systems_test.dir/apps/mini_systems_test.cc.o.d"
  "mini_systems_test"
  "mini_systems_test.pdb"
  "mini_systems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_systems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
