file(REMOVE_RECURSE
  "CMakeFiles/pipeline_options_test.dir/integration/pipeline_options_test.cc.o"
  "CMakeFiles/pipeline_options_test.dir/integration/pipeline_options_test.cc.o.d"
  "pipeline_options_test"
  "pipeline_options_test.pdb"
  "pipeline_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
