# Empty dependencies file for hb_graph_test.
# This may be replaced when dependencies are built.
