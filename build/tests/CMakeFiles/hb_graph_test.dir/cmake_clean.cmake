file(REMOVE_RECURSE
  "CMakeFiles/hb_graph_test.dir/hb/graph_test.cc.o"
  "CMakeFiles/hb_graph_test.dir/hb/graph_test.cc.o.d"
  "hb_graph_test"
  "hb_graph_test.pdb"
  "hb_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
