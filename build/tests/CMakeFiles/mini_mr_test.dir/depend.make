# Empty dependencies file for mini_mr_test.
# This may be replaced when dependencies are built.
