file(REMOVE_RECURSE
  "CMakeFiles/mini_mr_test.dir/apps/mini_mr_test.cc.o"
  "CMakeFiles/mini_mr_test.dir/apps/mini_mr_test.cc.o.d"
  "mini_mr_test"
  "mini_mr_test.pdb"
  "mini_mr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_mr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
