# Empty dependencies file for engines_equivalence_test.
# This may be replaced when dependencies are built.
