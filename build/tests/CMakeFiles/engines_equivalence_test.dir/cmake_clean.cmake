file(REMOVE_RECURSE
  "CMakeFiles/engines_equivalence_test.dir/hb/engines_equivalence_test.cc.o"
  "CMakeFiles/engines_equivalence_test.dir/hb/engines_equivalence_test.cc.o.d"
  "engines_equivalence_test"
  "engines_equivalence_test.pdb"
  "engines_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engines_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
