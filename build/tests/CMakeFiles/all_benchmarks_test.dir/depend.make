# Empty dependencies file for all_benchmarks_test.
# This may be replaced when dependencies are built.
