file(REMOVE_RECURSE
  "CMakeFiles/all_benchmarks_test.dir/integration/all_benchmarks_test.cc.o"
  "CMakeFiles/all_benchmarks_test.dir/integration/all_benchmarks_test.cc.o.d"
  "all_benchmarks_test"
  "all_benchmarks_test.pdb"
  "all_benchmarks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_benchmarks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
