# Empty dependencies file for report_printer_test.
# This may be replaced when dependencies are built.
