file(REMOVE_RECURSE
  "CMakeFiles/report_printer_test.dir/dcatch/report_printer_test.cc.o"
  "CMakeFiles/report_printer_test.dir/dcatch/report_printer_test.cc.o.d"
  "report_printer_test"
  "report_printer_test.pdb"
  "report_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
