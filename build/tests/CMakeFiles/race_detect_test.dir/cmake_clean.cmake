file(REMOVE_RECURSE
  "CMakeFiles/race_detect_test.dir/detect/race_detect_test.cc.o"
  "CMakeFiles/race_detect_test.dir/detect/race_detect_test.cc.o.d"
  "race_detect_test"
  "race_detect_test.pdb"
  "race_detect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_detect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
