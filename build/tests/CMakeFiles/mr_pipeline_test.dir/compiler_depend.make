# Empty compiler generated dependencies file for mr_pipeline_test.
# This may be replaced when dependencies are built.
