file(REMOVE_RECURSE
  "CMakeFiles/mr_pipeline_test.dir/integration/mr_pipeline_test.cc.o"
  "CMakeFiles/mr_pipeline_test.dir/integration/mr_pipeline_test.cc.o.d"
  "mr_pipeline_test"
  "mr_pipeline_test.pdb"
  "mr_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
