# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hb_graph_test[1]_include.cmake")
include("/root/repo/build/tests/race_detect_test[1]_include.cmake")
include("/root/repo/build/tests/program_model_test[1]_include.cmake")
include("/root/repo/build/tests/impact_test[1]_include.cmake")
include("/root/repo/build/tests/mr_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/all_benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/engines_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/chunked_test[1]_include.cmake")
include("/root/repo/build/tests/pull_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/report_printer_test[1]_include.cmake")
include("/root/repo/build/tests/coord_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/mini_mr_test[1]_include.cmake")
include("/root/repo/build/tests/mini_systems_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_options_test[1]_include.cmake")
