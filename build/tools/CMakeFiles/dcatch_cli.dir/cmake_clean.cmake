file(REMOVE_RECURSE
  "CMakeFiles/dcatch_cli.dir/dcatch_cli.cc.o"
  "CMakeFiles/dcatch_cli.dir/dcatch_cli.cc.o.d"
  "dcatch"
  "dcatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
