# Empty dependencies file for dcatch_cli.
# This may be replaced when dependencies are built.
