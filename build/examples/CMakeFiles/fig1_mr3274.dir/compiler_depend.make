# Empty compiler generated dependencies file for fig1_mr3274.
# This may be replaced when dependencies are built.
