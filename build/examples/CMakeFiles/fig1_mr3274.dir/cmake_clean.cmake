file(REMOVE_RECURSE
  "CMakeFiles/fig1_mr3274.dir/fig1_mr3274.cpp.o"
  "CMakeFiles/fig1_mr3274.dir/fig1_mr3274.cpp.o.d"
  "fig1_mr3274"
  "fig1_mr3274.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mr3274.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
