file(REMOVE_RECURSE
  "CMakeFiles/trigger_hb4729.dir/trigger_hb4729.cpp.o"
  "CMakeFiles/trigger_hb4729.dir/trigger_hb4729.cpp.o.d"
  "trigger_hb4729"
  "trigger_hb4729.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_hb4729.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
