# Empty dependencies file for trigger_hb4729.
# This may be replaced when dependencies are built.
