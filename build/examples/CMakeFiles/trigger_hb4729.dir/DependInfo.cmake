
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trigger_hb4729.cpp" "examples/CMakeFiles/trigger_hb4729.dir/trigger_hb4729.cpp.o" "gcc" "examples/CMakeFiles/trigger_hb4729.dir/trigger_hb4729.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dcatch/CMakeFiles/dcatch_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dcatch_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trigger/CMakeFiles/dcatch_trigger.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dcatch_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/dcatch_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/dcatch_prune.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dcatch_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dcatch_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcatch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcatch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dcatch_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
