# Empty compiler generated dependencies file for seed_sweep.
# This may be replaced when dependencies are built.
