# Empty dependencies file for table5_pruning.
# This may be replaced when dependencies are built.
