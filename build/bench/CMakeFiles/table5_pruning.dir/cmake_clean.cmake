file(REMOVE_RECURSE
  "CMakeFiles/table5_pruning.dir/table5_pruning.cc.o"
  "CMakeFiles/table5_pruning.dir/table5_pruning.cc.o.d"
  "table5_pruning"
  "table5_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
