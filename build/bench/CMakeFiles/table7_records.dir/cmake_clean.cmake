file(REMOVE_RECURSE
  "CMakeFiles/table7_records.dir/table7_records.cc.o"
  "CMakeFiles/table7_records.dir/table7_records.cc.o.d"
  "table7_records"
  "table7_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
