# Empty dependencies file for table7_records.
# This may be replaced when dependencies are built.
