# Empty dependencies file for table1_mechanisms.
# This may be replaced when dependencies are built.
