file(REMOVE_RECURSE
  "CMakeFiles/table1_mechanisms.dir/table1_mechanisms.cc.o"
  "CMakeFiles/table1_mechanisms.dir/table1_mechanisms.cc.o.d"
  "table1_mechanisms"
  "table1_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
