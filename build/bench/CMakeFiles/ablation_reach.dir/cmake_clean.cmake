file(REMOVE_RECURSE
  "CMakeFiles/ablation_reach.dir/ablation_reach.cc.o"
  "CMakeFiles/ablation_reach.dir/ablation_reach.cc.o.d"
  "ablation_reach"
  "ablation_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
