# Empty dependencies file for ablation_reach.
# This may be replaced when dependencies are built.
