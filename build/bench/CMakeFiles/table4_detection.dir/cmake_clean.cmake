file(REMOVE_RECURSE
  "CMakeFiles/table4_detection.dir/table4_detection.cc.o"
  "CMakeFiles/table4_detection.dir/table4_detection.cc.o.d"
  "table4_detection"
  "table4_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
