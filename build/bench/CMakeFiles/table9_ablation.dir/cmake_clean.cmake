file(REMOVE_RECURSE
  "CMakeFiles/table9_ablation.dir/table9_ablation.cc.o"
  "CMakeFiles/table9_ablation.dir/table9_ablation.cc.o.d"
  "table9_ablation"
  "table9_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
