# Empty compiler generated dependencies file for table9_ablation.
# This may be replaced when dependencies are built.
