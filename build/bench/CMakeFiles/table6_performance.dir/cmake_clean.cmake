file(REMOVE_RECURSE
  "CMakeFiles/table6_performance.dir/table6_performance.cc.o"
  "CMakeFiles/table6_performance.dir/table6_performance.cc.o.d"
  "table6_performance"
  "table6_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
