# Empty dependencies file for table6_performance.
# This may be replaced when dependencies are built.
