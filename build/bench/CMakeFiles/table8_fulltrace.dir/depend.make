# Empty dependencies file for table8_fulltrace.
# This may be replaced when dependencies are built.
