file(REMOVE_RECURSE
  "CMakeFiles/table8_fulltrace.dir/table8_fulltrace.cc.o"
  "CMakeFiles/table8_fulltrace.dir/table8_fulltrace.cc.o.d"
  "table8_fulltrace"
  "table8_fulltrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_fulltrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
