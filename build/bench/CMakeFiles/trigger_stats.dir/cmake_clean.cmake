file(REMOVE_RECURSE
  "CMakeFiles/trigger_stats.dir/trigger_stats.cc.o"
  "CMakeFiles/trigger_stats.dir/trigger_stats.cc.o.d"
  "trigger_stats"
  "trigger_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
