# Empty dependencies file for trigger_stats.
# This may be replaced when dependencies are built.
