
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hb/chunked.cc" "src/hb/CMakeFiles/dcatch_hb.dir/chunked.cc.o" "gcc" "src/hb/CMakeFiles/dcatch_hb.dir/chunked.cc.o.d"
  "/root/repo/src/hb/graph.cc" "src/hb/CMakeFiles/dcatch_hb.dir/graph.cc.o" "gcc" "src/hb/CMakeFiles/dcatch_hb.dir/graph.cc.o.d"
  "/root/repo/src/hb/pull.cc" "src/hb/CMakeFiles/dcatch_hb.dir/pull.cc.o" "gcc" "src/hb/CMakeFiles/dcatch_hb.dir/pull.cc.o.d"
  "/root/repo/src/hb/vector_clock.cc" "src/hb/CMakeFiles/dcatch_hb.dir/vector_clock.cc.o" "gcc" "src/hb/CMakeFiles/dcatch_hb.dir/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/dcatch_report.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dcatch_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dcatch_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcatch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
