file(REMOVE_RECURSE
  "libdcatch_hb.a"
)
