file(REMOVE_RECURSE
  "CMakeFiles/dcatch_hb.dir/chunked.cc.o"
  "CMakeFiles/dcatch_hb.dir/chunked.cc.o.d"
  "CMakeFiles/dcatch_hb.dir/graph.cc.o"
  "CMakeFiles/dcatch_hb.dir/graph.cc.o.d"
  "CMakeFiles/dcatch_hb.dir/pull.cc.o"
  "CMakeFiles/dcatch_hb.dir/pull.cc.o.d"
  "CMakeFiles/dcatch_hb.dir/vector_clock.cc.o"
  "CMakeFiles/dcatch_hb.dir/vector_clock.cc.o.d"
  "libdcatch_hb.a"
  "libdcatch_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
