# Empty dependencies file for dcatch_hb.
# This may be replaced when dependencies are built.
