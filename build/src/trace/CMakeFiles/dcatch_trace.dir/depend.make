# Empty dependencies file for dcatch_trace.
# This may be replaced when dependencies are built.
