file(REMOVE_RECURSE
  "CMakeFiles/dcatch_trace.dir/record.cc.o"
  "CMakeFiles/dcatch_trace.dir/record.cc.o.d"
  "CMakeFiles/dcatch_trace.dir/trace_store.cc.o"
  "CMakeFiles/dcatch_trace.dir/trace_store.cc.o.d"
  "libdcatch_trace.a"
  "libdcatch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
