file(REMOVE_RECURSE
  "libdcatch_trace.a"
)
