# Empty compiler generated dependencies file for dcatch_model.
# This may be replaced when dependencies are built.
