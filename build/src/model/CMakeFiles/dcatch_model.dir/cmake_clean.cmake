file(REMOVE_RECURSE
  "CMakeFiles/dcatch_model.dir/program_model.cc.o"
  "CMakeFiles/dcatch_model.dir/program_model.cc.o.d"
  "libdcatch_model.a"
  "libdcatch_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
