file(REMOVE_RECURSE
  "libdcatch_model.a"
)
