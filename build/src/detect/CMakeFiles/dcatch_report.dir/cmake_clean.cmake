file(REMOVE_RECURSE
  "CMakeFiles/dcatch_report.dir/report.cc.o"
  "CMakeFiles/dcatch_report.dir/report.cc.o.d"
  "libdcatch_report.a"
  "libdcatch_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
