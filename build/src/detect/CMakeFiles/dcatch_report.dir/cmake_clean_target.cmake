file(REMOVE_RECURSE
  "libdcatch_report.a"
)
