# Empty dependencies file for dcatch_report.
# This may be replaced when dependencies are built.
