file(REMOVE_RECURSE
  "CMakeFiles/dcatch_detect.dir/race_detect.cc.o"
  "CMakeFiles/dcatch_detect.dir/race_detect.cc.o.d"
  "libdcatch_detect.a"
  "libdcatch_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
