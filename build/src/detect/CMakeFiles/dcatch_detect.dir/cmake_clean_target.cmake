file(REMOVE_RECURSE
  "libdcatch_detect.a"
)
