# Empty compiler generated dependencies file for dcatch_detect.
# This may be replaced when dependencies are built.
