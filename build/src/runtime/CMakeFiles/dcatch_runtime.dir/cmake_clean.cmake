file(REMOVE_RECURSE
  "CMakeFiles/dcatch_runtime.dir/coord.cc.o"
  "CMakeFiles/dcatch_runtime.dir/coord.cc.o.d"
  "CMakeFiles/dcatch_runtime.dir/event.cc.o"
  "CMakeFiles/dcatch_runtime.dir/event.cc.o.d"
  "CMakeFiles/dcatch_runtime.dir/node.cc.o"
  "CMakeFiles/dcatch_runtime.dir/node.cc.o.d"
  "CMakeFiles/dcatch_runtime.dir/scheduler.cc.o"
  "CMakeFiles/dcatch_runtime.dir/scheduler.cc.o.d"
  "CMakeFiles/dcatch_runtime.dir/sim.cc.o"
  "CMakeFiles/dcatch_runtime.dir/sim.cc.o.d"
  "libdcatch_runtime.a"
  "libdcatch_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
