
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/coord.cc" "src/runtime/CMakeFiles/dcatch_runtime.dir/coord.cc.o" "gcc" "src/runtime/CMakeFiles/dcatch_runtime.dir/coord.cc.o.d"
  "/root/repo/src/runtime/event.cc" "src/runtime/CMakeFiles/dcatch_runtime.dir/event.cc.o" "gcc" "src/runtime/CMakeFiles/dcatch_runtime.dir/event.cc.o.d"
  "/root/repo/src/runtime/node.cc" "src/runtime/CMakeFiles/dcatch_runtime.dir/node.cc.o" "gcc" "src/runtime/CMakeFiles/dcatch_runtime.dir/node.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/runtime/CMakeFiles/dcatch_runtime.dir/scheduler.cc.o" "gcc" "src/runtime/CMakeFiles/dcatch_runtime.dir/scheduler.cc.o.d"
  "/root/repo/src/runtime/sim.cc" "src/runtime/CMakeFiles/dcatch_runtime.dir/sim.cc.o" "gcc" "src/runtime/CMakeFiles/dcatch_runtime.dir/sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/dcatch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
