file(REMOVE_RECURSE
  "libdcatch_runtime.a"
)
