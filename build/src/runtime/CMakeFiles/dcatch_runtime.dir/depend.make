# Empty dependencies file for dcatch_runtime.
# This may be replaced when dependencies are built.
