file(REMOVE_RECURSE
  "libdcatch_trigger.a"
)
