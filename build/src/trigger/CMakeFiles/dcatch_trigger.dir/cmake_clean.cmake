file(REMOVE_RECURSE
  "CMakeFiles/dcatch_trigger.dir/controller.cc.o"
  "CMakeFiles/dcatch_trigger.dir/controller.cc.o.d"
  "CMakeFiles/dcatch_trigger.dir/harness.cc.o"
  "CMakeFiles/dcatch_trigger.dir/harness.cc.o.d"
  "CMakeFiles/dcatch_trigger.dir/placement.cc.o"
  "CMakeFiles/dcatch_trigger.dir/placement.cc.o.d"
  "libdcatch_trigger.a"
  "libdcatch_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
