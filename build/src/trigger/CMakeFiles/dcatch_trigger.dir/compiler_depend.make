# Empty compiler generated dependencies file for dcatch_trigger.
# This may be replaced when dependencies are built.
