
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trigger/controller.cc" "src/trigger/CMakeFiles/dcatch_trigger.dir/controller.cc.o" "gcc" "src/trigger/CMakeFiles/dcatch_trigger.dir/controller.cc.o.d"
  "/root/repo/src/trigger/harness.cc" "src/trigger/CMakeFiles/dcatch_trigger.dir/harness.cc.o" "gcc" "src/trigger/CMakeFiles/dcatch_trigger.dir/harness.cc.o.d"
  "/root/repo/src/trigger/placement.cc" "src/trigger/CMakeFiles/dcatch_trigger.dir/placement.cc.o" "gcc" "src/trigger/CMakeFiles/dcatch_trigger.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/dcatch_report.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dcatch_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcatch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
