file(REMOVE_RECURSE
  "CMakeFiles/dcatch_apps.dir/benchmarks.cc.o"
  "CMakeFiles/dcatch_apps.dir/benchmarks.cc.o.d"
  "CMakeFiles/dcatch_apps.dir/cassandra/mini_cassandra.cc.o"
  "CMakeFiles/dcatch_apps.dir/cassandra/mini_cassandra.cc.o.d"
  "CMakeFiles/dcatch_apps.dir/hbase/mini_hbase.cc.o"
  "CMakeFiles/dcatch_apps.dir/hbase/mini_hbase.cc.o.d"
  "CMakeFiles/dcatch_apps.dir/mapreduce/mini_mr.cc.o"
  "CMakeFiles/dcatch_apps.dir/mapreduce/mini_mr.cc.o.d"
  "CMakeFiles/dcatch_apps.dir/zookeeper/mini_zk.cc.o"
  "CMakeFiles/dcatch_apps.dir/zookeeper/mini_zk.cc.o.d"
  "libdcatch_apps.a"
  "libdcatch_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
