# Empty compiler generated dependencies file for dcatch_apps.
# This may be replaced when dependencies are built.
