
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/benchmarks.cc" "src/apps/CMakeFiles/dcatch_apps.dir/benchmarks.cc.o" "gcc" "src/apps/CMakeFiles/dcatch_apps.dir/benchmarks.cc.o.d"
  "/root/repo/src/apps/cassandra/mini_cassandra.cc" "src/apps/CMakeFiles/dcatch_apps.dir/cassandra/mini_cassandra.cc.o" "gcc" "src/apps/CMakeFiles/dcatch_apps.dir/cassandra/mini_cassandra.cc.o.d"
  "/root/repo/src/apps/hbase/mini_hbase.cc" "src/apps/CMakeFiles/dcatch_apps.dir/hbase/mini_hbase.cc.o" "gcc" "src/apps/CMakeFiles/dcatch_apps.dir/hbase/mini_hbase.cc.o.d"
  "/root/repo/src/apps/mapreduce/mini_mr.cc" "src/apps/CMakeFiles/dcatch_apps.dir/mapreduce/mini_mr.cc.o" "gcc" "src/apps/CMakeFiles/dcatch_apps.dir/mapreduce/mini_mr.cc.o.d"
  "/root/repo/src/apps/zookeeper/mini_zk.cc" "src/apps/CMakeFiles/dcatch_apps.dir/zookeeper/mini_zk.cc.o" "gcc" "src/apps/CMakeFiles/dcatch_apps.dir/zookeeper/mini_zk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dcatch_model.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dcatch_report.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dcatch_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcatch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dcatch_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
