file(REMOVE_RECURSE
  "libdcatch_apps.a"
)
