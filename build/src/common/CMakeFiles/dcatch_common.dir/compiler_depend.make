# Empty compiler generated dependencies file for dcatch_common.
# This may be replaced when dependencies are built.
