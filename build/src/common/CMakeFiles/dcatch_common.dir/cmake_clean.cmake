file(REMOVE_RECURSE
  "CMakeFiles/dcatch_common.dir/json.cc.o"
  "CMakeFiles/dcatch_common.dir/json.cc.o.d"
  "CMakeFiles/dcatch_common.dir/logging.cc.o"
  "CMakeFiles/dcatch_common.dir/logging.cc.o.d"
  "CMakeFiles/dcatch_common.dir/util.cc.o"
  "CMakeFiles/dcatch_common.dir/util.cc.o.d"
  "libdcatch_common.a"
  "libdcatch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
