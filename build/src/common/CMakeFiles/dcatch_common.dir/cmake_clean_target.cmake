file(REMOVE_RECURSE
  "libdcatch_common.a"
)
