# Empty dependencies file for dcatch_pipeline.
# This may be replaced when dependencies are built.
