file(REMOVE_RECURSE
  "libdcatch_pipeline.a"
)
