file(REMOVE_RECURSE
  "CMakeFiles/dcatch_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/dcatch_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/dcatch_pipeline.dir/report_printer.cc.o"
  "CMakeFiles/dcatch_pipeline.dir/report_printer.cc.o.d"
  "libdcatch_pipeline.a"
  "libdcatch_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
