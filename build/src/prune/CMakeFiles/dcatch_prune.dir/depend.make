# Empty dependencies file for dcatch_prune.
# This may be replaced when dependencies are built.
