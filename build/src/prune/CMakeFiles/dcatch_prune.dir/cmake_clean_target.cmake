file(REMOVE_RECURSE
  "libdcatch_prune.a"
)
