file(REMOVE_RECURSE
  "CMakeFiles/dcatch_prune.dir/impact.cc.o"
  "CMakeFiles/dcatch_prune.dir/impact.cc.o.d"
  "libdcatch_prune.a"
  "libdcatch_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcatch_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
